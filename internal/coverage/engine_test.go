package coverage

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/fault"
	"repro/internal/march"
	"repro/internal/prt"
	"repro/internal/ram"
)

// The engine-equivalence property: for every replay-safe runner and
// every batchable fault universe, the bit-parallel and compiled
// engines — the latter with collapsing both on and off — must produce
// a Result byte-identical to the per-fault oracle: same totals, same
// per-class detected counts, same clean-run metadata.  Stats is
// diagnostic metadata outside the contract and is zeroed before
// comparing.

func assertEngineEquivalence(t *testing.T, r Runner, u fault.Universe, mk MemoryFactory) {
	t.Helper()
	oracle := CampaignEngine(r, u, mk, 4, EngineOracle)
	oracle.Stats = nil
	for _, mode := range []struct {
		name     string
		engine   Engine
		collapse bool
	}{
		{"bitpar", EngineBitParallel, false},
		{"compiled", EngineCompiled, false},
		{"compiled+collapse", EngineCompiled, true},
	} {
		SetCollapse(mode.collapse)
		got := CampaignEngine(r, u, mk, 4, mode.engine)
		SetCollapse(true)
		got.Stats = nil
		if !reflect.DeepEqual(oracle, got) {
			t.Errorf("%s on %s: engines disagree\noracle: %+v\n%s: %+v",
				r.Name(), u.Name, oracle, mode.name, got)
			for _, c := range oracle.Classes() {
				if oracle.ByClass[c] != got.ByClass[c] {
					t.Errorf("  class %s: oracle %+v %s %+v", c, oracle.ByClass[c], mode.name, got.ByClass[c])
				}
			}
			perFaultDiff(t, r, u, mk)
		}
	}
}

// perFaultDiff pinpoints individual faults the engines disagree on —
// diagnostic detail for when the aggregate property fails.
func perFaultDiff(t *testing.T, r Runner, u fault.Universe, mk MemoryFactory) {
	t.Helper()
	for _, f := range u.Faults {
		single := fault.Universe{Name: "single", Faults: []fault.Fault{f}}
		o := CampaignEngine(r, single, mk, 1, EngineOracle)
		for _, engine := range []Engine{EngineBitParallel, EngineCompiled} {
			b := CampaignEngine(r, single, mk, 1, engine)
			if o.Detected != b.Detected {
				t.Errorf("  fault %s: oracle detected=%v %s detected=%v", f, o.Detected == 1, engine, b.Detected == 1)
			}
		}
	}
}

func womUniverses(n, m int) []fault.Universe {
	return []fault.Universe{
		{Name: "single-cell", Faults: fault.SingleCellUniverse(n, m)},
		{Name: "stuck-open", Faults: fault.StuckOpenUniverse(n)},
		{Name: "retention", Faults: fault.RetentionUniverse(n, m, 16)},
		{Name: "decoder", Faults: fault.DecoderUniverse(n)},
		{Name: "coupling", Faults: fault.CouplingUniverse(
			append(fault.AdjacentPairs(n), fault.SamplePairs(n, m, 24, 7)...))},
		fault.StandardUniverse(n, m, 12, 42),
	}
}

// equivalenceSizes shrinks the universe sweep under -short (the -race
// CI job runs these packages with shortened universes).
func equivalenceSizes(sizes []int, t *testing.T) []int {
	t.Helper()
	if testing.Short() {
		return sizes[:1]
	}
	return sizes
}

func TestEngineEquivalenceMarch(t *testing.T) {
	for _, n := range equivalenceSizes([]int{16, 33, 48}, t) {
		for _, u := range womUniverses(n, 4) {
			r := MarchRunner(march.MarchCMinus(), march.DataBackgrounds(4))
			assertEngineEquivalence(t, r, u, womFactory(n, 4))
		}
		// Bit-oriented memories with a different March algorithm.
		u := fault.Universe{Name: "bom-single", Faults: fault.SingleCellUniverse(n, 1)}
		assertEngineEquivalence(t, MarchRunner(march.MarchB(), nil), u, bomFactory(n))
	}
}

func TestEngineEquivalencePRT(t *testing.T) {
	gen := prt.PaperWOMConfig().Gen
	ringCfg := prt.PaperWOMConfig()
	ringCfg.Ring = true
	ringCfg.Verify = true
	for _, n := range equivalenceSizes([]int{17, 33, 48}, t) {
		for _, s := range []prt.Scheme{
			prt.StandardScheme3(gen),
			prt.StandardScheme3(gen).SignatureOnly(),
			prt.ExtendedScheme(gen, 2),
			{Name: "PRT-ring", Iters: []prt.Config{ringCfg}},
		} {
			for _, u := range womUniverses(n, 4) {
				assertEngineEquivalence(t, PRTRunner(s), u, womFactory(n, 4))
			}
		}
	}
}

func TestEngineEquivalenceBitSlicedLaneModes(t *testing.T) {
	const n, m = 32, 4
	for _, mode := range []prt.LaneMode{prt.ParallelLanes, prt.RandomLanes} {
		r := BitSlicedRunner(fmt.Sprintf("lanes/%s", mode), prt.BitSlicedScheme3(m, mode))
		for _, u := range []fault.Universe{
			{Name: "single-cell", Faults: fault.SingleCellUniverse(n, m)},
			{Name: "intra-word", Faults: fault.IntraWordUniverse(n, m)},
			{Name: "coupling", Faults: fault.CouplingUniverse(fault.AdjacentPairs(n))},
		} {
			assertEngineEquivalence(t, r, u, womFactory(n, m))
		}
	}
}

func TestEngineEquivalenceNPSF(t *testing.T) {
	const n, width = 36, 6
	u := fault.Universe{Name: "npsf", Faults: append(
		fault.NPSFUniverse(n, width, 3), fault.ANPSFUniverse(n, width, 5)...)}
	mk := bomFactory(n)
	gen := prt.PaperBOMConfig().Gen
	assertEngineEquivalence(t, MarchRunner(march.MarchSS(), nil), u, mk)
	assertEngineEquivalence(t, PRTRunner(prt.StandardScheme3(gen)), u, mk)
}

// TestEngineFallbacks: non-replay-safe runners and non-batchable
// faults must silently take the oracle path with identical results.
func TestEngineFallbacks(t *testing.T) {
	const n = 16
	u := fault.Universe{Name: "single", Faults: fault.SingleCellUniverse(n, 1)}
	// An anonymous runner without the ReplaySafe marker.
	r := opaqueRunner{inner: MarchRunner(march.MATSPlus(), nil)}
	assertEngineEquivalence(t, r, u, bomFactory(n))
}

type opaqueRunner struct{ inner Runner }

func (o opaqueRunner) Name() string                    { return o.inner.Name() + "/opaque" }
func (o opaqueRunner) Run(m ram.Memory) (bool, uint64) { return o.inner.Run(m) }
