package telemetry

import (
	"sync"
	"sync/atomic"
	"time"
)

// Per-worker counter indices.  The set is sized so one Worker slot is
// exactly one cache line of atomics (8 × 8 bytes) plus a line of
// padding.
const (
	ctrFaults     = iota // verdicts delivered (presented faults)
	ctrReps              // faults actually simulated (post-collapse)
	ctrBatches           // 64-machine replay batches
	ctrChunks            // streaming chunks completed
	ctrKernel            // nanoseconds inside replay kernels
	ctrSinkWait          // nanoseconds waiting to acquire the serialized sink
	ctrSink              // nanoseconds inside the sink callback
	ctrSourceWait        // nanoseconds claiming chunks from the source
	numCounters
)

// Global (non-per-worker) counter indices: low-frequency events where
// one shared atomic is cheaper than a slot lookup.
const (
	gCacheHits = iota // program-cache lookup hits
	gCacheMisses
	gArenaReuse // arena-pool checkouts served from the pool
	gArenaFresh // arena-pool checkouts that built a new arena
	gCollapseIn // faults entering structural collapsing
	gCollapseOut
	gCheckpointWrites // durable checkpoint files written
	gCheckpointNanos  // nanoseconds spent encoding + fsyncing them
	numGlobals
)

// Local is one worker's private counter accumulation.  It is plain
// data: the worker increments it with ordinary arithmetic on the hot
// path and flushes it into its padded Registry slot once per batch or
// chunk (Registry.Flush), which zeroes it again.
type Local struct {
	Faults, Reps, Batches, Chunks                          uint64
	KernelNanos, SinkWaitNanos, SinkNanos, SourceWaitNanos uint64
}

// Worker is one worker's flush target: a cache-line-padded block of
// atomic counters.  Only the owning worker adds to it; any goroutine
// may read it through Registry.Snapshot.
type Worker struct {
	vals [numCounters]atomic.Uint64
	_    [64]byte // keep neighbouring slots off this line
}

// Registry is one instrumentation domain: per-worker flush slots,
// global event counters, and the progress/stage reporting state.  All
// methods are safe for concurrent use and safe on a nil receiver (they
// become no-ops), so call sites can thread Active() through without
// guarding every call.
type Registry struct {
	mu      sync.Mutex
	workers []*Worker

	globals [numGlobals]atomic.Uint64

	// now is the clock, injectable for cadence tests; fixed after
	// construction.
	now func() time.Time

	// Progress state: the currently active stage, the survivor count
	// reported by the session layer (-1 until known), the universe-index
	// high-water mark of the active stage, and the rate-limited
	// callback.
	stage       atomic.Pointer[stageState]
	survivors   atomic.Int64
	highWater   atomic.Int64
	hasProgress atomic.Bool
	everyNanos  int64
	lastEmit    atomic.Int64
	progressFn  func(Progress)
	stageFn     func(StageReport)

	// sinkMode labels the streaming sink path of the most recent stage
	// (0 unset, 1 ordered, 2 unordered) — surfaced as the /metrics
	// "sink" label so the debug endpoint distinguishes the two paths.
	sinkMode atomic.Int32
}

// SetSinkMode records which streaming sink discipline the active stage
// runs under (the coverage executor calls this per stage).
func (r *Registry) SetSinkMode(unordered bool) {
	if r == nil {
		return
	}
	if unordered {
		r.sinkMode.Store(2)
	} else {
		r.sinkMode.Store(1)
	}
}

// SinkMode returns the recorded sink label: "ordered", "unordered", or
// "" when no streaming stage has run.
func (r *Registry) SinkMode() string {
	if r == nil {
		return ""
	}
	switch r.sinkMode.Load() {
	case 1:
		return "ordered"
	case 2:
		return "unordered"
	}
	return ""
}

// ProgressAttached reports whether a live progress callback is
// installed (OnProgress with a non-nil function).  The coverage
// executor consults it when auto-selecting the streaming sink: live
// progress needs the ordered sink's coherent frontier.
func (r *Registry) ProgressAttached() bool {
	return r != nil && r.hasProgress.Load()
}

// NewRegistry returns an empty registry using the real clock.
func NewRegistry() *Registry {
	r := &Registry{now: time.Now}
	r.survivors.Store(-1)
	return r
}

// SetClock replaces the registry's clock — cadence tests inject a fake
// one.  Must be called before the registry is shared.
func (r *Registry) SetClock(now func() time.Time) { r.now = now }

// active is the process-wide registry consulted by the instrumented
// engines; nil means instrumentation is detached and near-free.
var active atomic.Pointer[Registry]

// SetActive attaches r as the process-wide registry (nil detaches).
func SetActive(r *Registry) { active.Store(r) }

// Active returns the attached registry, or nil.  Hot paths load it
// once per shard run and branch on the nil.
func Active() *Registry { return active.Load() }

// Worker returns the flush slot for worker index i, growing the slot
// table as needed.  Slots are identified by index so per-stage
// snapshot deltas line up worker for worker; concurrent campaigns
// sharing one registry share slots, which keeps aggregate totals exact
// and blurs only the per-worker attribution.
func (r *Registry) Worker(i int) *Worker {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for len(r.workers) <= i {
		r.workers = append(r.workers, &Worker{})
	}
	return r.workers[i]
}

// Flush adds l into w's slot and zeroes l.  Called once per batch or
// chunk by the owning worker; it also drives the rate-limited progress
// emission.
func (r *Registry) Flush(w *Worker, l *Local) {
	if r == nil || w == nil {
		return
	}
	add := func(c int, v uint64) {
		if v != 0 {
			w.vals[c].Add(v)
		}
	}
	add(ctrFaults, l.Faults)
	add(ctrReps, l.Reps)
	add(ctrBatches, l.Batches)
	add(ctrChunks, l.Chunks)
	add(ctrKernel, l.KernelNanos)
	add(ctrSinkWait, l.SinkWaitNanos)
	add(ctrSink, l.SinkNanos)
	add(ctrSourceWait, l.SourceWaitNanos)
	*l = Local{}
	r.noteFlush()
}

// CacheLookup records a program-cache lookup (sim.ProgramCache.Get).
func (r *Registry) CacheLookup(hit bool) {
	if r == nil {
		return
	}
	if hit {
		r.globals[gCacheHits].Add(1)
	} else {
		r.globals[gCacheMisses].Add(1)
	}
}

// ArenaGet records an arena-pool checkout (sim.ArenaPool.Get).
func (r *Registry) ArenaGet(reused bool) {
	if r == nil {
		return
	}
	if reused {
		r.globals[gArenaReuse].Add(1)
	} else {
		r.globals[gArenaFresh].Add(1)
	}
}

// CollapseDelta records one structural-collapse pass: in faults
// entered, out representatives survived (fault.CollapseView).
func (r *Registry) CollapseDelta(in, out int) {
	if r == nil {
		return
	}
	r.globals[gCollapseIn].Add(uint64(in))
	r.globals[gCollapseOut].Add(uint64(out))
}

// CheckpointWrite records one durable checkpoint write and the time it
// took (encode + fsync + rename) — the cost side of the durability
// cadence, surfaced so a campaign can see when -checkpoint-every is
// set low enough to matter.
func (r *Registry) CheckpointWrite(d time.Duration) {
	if r == nil {
		return
	}
	r.globals[gCheckpointWrites].Add(1)
	r.globals[gCheckpointNanos].Add(uint64(d))
}

// ObserveIndex raises the active stage's universe-index high-water
// mark — the resume point of an index-addressable streaming source.
func (r *Registry) ObserveIndex(idx int64) {
	if r == nil {
		return
	}
	for {
		cur := r.highWater.Load()
		if idx <= cur || r.highWater.CompareAndSwap(cur, idx) {
			return
		}
	}
}

// ReportSurvivors publishes the session's current survivor count (the
// universe faults no stage has detected yet).
func (r *Registry) ReportSurvivors(n int64) {
	if r == nil {
		return
	}
	r.survivors.Store(n)
}

// WorkerSnapshot is one flush slot's totals, nanoseconds resolved to
// durations.
type WorkerSnapshot struct {
	Faults, Reps, Batches, Chunks      uint64
	Kernel, SinkWait, Sink, SourceWait time.Duration
}

// Snapshot is one aggregated view of a registry: per-worker rows plus
// their sums and the global event counters.  Snapshots are values;
// Sub diffs two of them for per-stage deltas.
type Snapshot struct {
	Faults, Reps, Batches, Chunks      uint64
	Kernel, SinkWait, Sink, SourceWait time.Duration
	Workers                            []WorkerSnapshot

	CacheHits, CacheMisses  uint64
	ArenaReuse, ArenaFresh  uint64
	CollapseIn, CollapseOut uint64
	CheckpointWrites        uint64
	CheckpointTime          time.Duration
}

// Snapshot aggregates the registry's counters.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	workers := r.workers
	r.mu.Unlock()
	s.Workers = make([]WorkerSnapshot, len(workers))
	for i, w := range workers {
		ws := WorkerSnapshot{
			Faults:     w.vals[ctrFaults].Load(),
			Reps:       w.vals[ctrReps].Load(),
			Batches:    w.vals[ctrBatches].Load(),
			Chunks:     w.vals[ctrChunks].Load(),
			Kernel:     time.Duration(w.vals[ctrKernel].Load()),
			SinkWait:   time.Duration(w.vals[ctrSinkWait].Load()),
			Sink:       time.Duration(w.vals[ctrSink].Load()),
			SourceWait: time.Duration(w.vals[ctrSourceWait].Load()),
		}
		s.Workers[i] = ws
		s.Faults += ws.Faults
		s.Reps += ws.Reps
		s.Batches += ws.Batches
		s.Chunks += ws.Chunks
		s.Kernel += ws.Kernel
		s.SinkWait += ws.SinkWait
		s.Sink += ws.Sink
		s.SourceWait += ws.SourceWait
	}
	s.CacheHits = r.globals[gCacheHits].Load()
	s.CacheMisses = r.globals[gCacheMisses].Load()
	s.ArenaReuse = r.globals[gArenaReuse].Load()
	s.ArenaFresh = r.globals[gArenaFresh].Load()
	s.CollapseIn = r.globals[gCollapseIn].Load()
	s.CollapseOut = r.globals[gCollapseOut].Load()
	s.CheckpointWrites = r.globals[gCheckpointWrites].Load()
	s.CheckpointTime = time.Duration(r.globals[gCheckpointNanos].Load())
	return s
}

// Sub returns the counter deltas s − prev, worker rows aligned by
// index (rows prev lacks are taken whole).
func (s Snapshot) Sub(prev Snapshot) Snapshot {
	d := Snapshot{
		Faults:      s.Faults - prev.Faults,
		Reps:        s.Reps - prev.Reps,
		Batches:     s.Batches - prev.Batches,
		Chunks:      s.Chunks - prev.Chunks,
		Kernel:      s.Kernel - prev.Kernel,
		SinkWait:    s.SinkWait - prev.SinkWait,
		Sink:        s.Sink - prev.Sink,
		SourceWait:  s.SourceWait - prev.SourceWait,
		CacheHits:   s.CacheHits - prev.CacheHits,
		CacheMisses: s.CacheMisses - prev.CacheMisses,
		ArenaReuse:  s.ArenaReuse - prev.ArenaReuse,
		ArenaFresh:  s.ArenaFresh - prev.ArenaFresh,
		CollapseIn:  s.CollapseIn - prev.CollapseIn,
		CollapseOut: s.CollapseOut - prev.CollapseOut,

		CheckpointWrites: s.CheckpointWrites - prev.CheckpointWrites,
		CheckpointTime:   s.CheckpointTime - prev.CheckpointTime,
	}
	d.Workers = make([]WorkerSnapshot, len(s.Workers))
	for i, w := range s.Workers {
		if i < len(prev.Workers) {
			p := prev.Workers[i]
			w.Faults -= p.Faults
			w.Reps -= p.Reps
			w.Batches -= p.Batches
			w.Chunks -= p.Chunks
			w.Kernel -= p.Kernel
			w.SinkWait -= p.SinkWait
			w.Sink -= p.Sink
			w.SourceWait -= p.SourceWait
		}
		d.Workers[i] = w
	}
	return d
}

// CollapseRatio returns simulated representatives per presented fault
// (1 with collapsing off or no collapse passes recorded).
func (s Snapshot) CollapseRatio() float64 {
	if s.CollapseIn == 0 {
		return 1
	}
	return float64(s.CollapseOut) / float64(s.CollapseIn)
}

// Metrics flattens the snapshot into expvar-style name → value pairs —
// the /metrics document of the debug endpoint.  Durations are reported
// in seconds.
func (s Snapshot) Metrics() map[string]float64 {
	m := map[string]float64{
		"faults_presented":     float64(s.Faults),
		"faults_simulated":     float64(s.Reps),
		"batches":              float64(s.Batches),
		"chunks":               float64(s.Chunks),
		"kernel_seconds":       s.Kernel.Seconds(),
		"sink_wait_seconds":    s.SinkWait.Seconds(),
		"sink_seconds":         s.Sink.Seconds(),
		"source_wait_seconds":  s.SourceWait.Seconds(),
		"program_cache_hits":   float64(s.CacheHits),
		"program_cache_misses": float64(s.CacheMisses),
		"arena_reuse":          float64(s.ArenaReuse),
		"arena_fresh":          float64(s.ArenaFresh),
		"collapse_in":          float64(s.CollapseIn),
		"collapse_out":         float64(s.CollapseOut),
		"checkpoint_writes":    float64(s.CheckpointWrites),
		"checkpoint_seconds":   s.CheckpointTime.Seconds(),
		"workers":              float64(len(s.Workers)),
	}
	return m
}
