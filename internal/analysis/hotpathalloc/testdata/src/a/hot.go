package a

import "fmt"

// Sink prevents "declared and not used" noise in the fixtures.
var Sink any

// frame is a reusable buffer owner, standing in for sim.Arena.
type frame struct {
	buf   []int
	dirty []int32
}

// marked exhibits every forbidden construct once.
//
//faultsim:hotpath
func marked(f *frame, n int, s string, bs []byte, m map[int]int) {
	a := make([]int, n) // want `hotpath: make allocates`
	p := new(frame)     // want `hotpath: new allocates`
	a = append(a, 1)    // want `hotpath: append may grow the backing array`
	l := []int{1, 2}    // want `hotpath: slice literal allocates`
	mm := map[int]int{} // want `hotpath: map literal allocates`
	pf := &frame{}      // want `hotpath: address-taken composite literal escapes to the heap`
	cl := func() int {  // want `hotpath: function literal allocates a closure`
		return n
	}
	defer cl()                  // want `hotpath: defer in hot path`
	go cl()                     // want `hotpath: go statement allocates a goroutine`
	msg := fmt.Sprintf("%d", n) // want `hotpath: fmt.Sprintf formats and allocates`
	msg = msg + s               // want `hotpath: string concatenation allocates`
	str := string(bs)           // want `hotpath: string conversion allocates`
	bs2 := []byte(s)            // want `hotpath: string-to-slice conversion allocates`
	v := m[3]                   // want `hotpath: map access in hot path`
	delete(m, 3)                // want `hotpath: map delete in hot path`
	for k := range m {          // want `hotpath: map iteration in hot path`
		v += k
	}
	var i any = n
	Sink = []any{a, p, l, mm, pf, msg, str, bs2, v, i} // want `hotpath: slice literal allocates`
}

// box passes a non-pointer concrete value to an interface parameter.
//
//faultsim:hotpath
func box(f frame) {
	consume(f) // want `hotpath: conversion of frame to interface any allocates`
}

func consume(v any) { Sink = v }

// unmarked uses every construct freely: no marker, no findings.
func unmarked(n int, m map[int]int) {
	a := make([]int, n)
	a = append(a, 1)
	for k := range m {
		a = append(a, k)
	}
	defer func() {}()
	Sink = fmt.Sprint(a)
}
