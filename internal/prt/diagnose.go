package prt

import (
	"fmt"
	"sort"

	"repro/internal/gf"
	"repro/internal/lfsr"
	"repro/internal/ram"
)

// Diagnosis extends detection to localisation: after a scheme has
// flagged a memory, DiagnoseCells runs read-back passes against the
// predicted TDB of each iteration and triangulates which cells (and
// bits) misbehave — the information a repair flow (row/column
// redundancy allocation) needs.

// CellReport describes one suspicious cell.
type CellReport struct {
	// Addr is the cell address.
	Addr int
	// BadBits is a mask of bit positions that mismatched in at least
	// one iteration.
	BadBits ram.Word
	// Mismatches counts iterations in which the cell read wrong.
	Mismatches int
	// StuckAt is set (0 or 1) when every observed error on every bad
	// bit read the same value — the stuck-at hypothesis; -1 otherwise.
	StuckAt int
}

func (c CellReport) String() string {
	sa := "?"
	if c.StuckAt >= 0 {
		sa = fmt.Sprintf("stuck-at-%d", c.StuckAt)
	}
	return fmt.Sprintf("cell %d bits %#x (%d misses, %s)", c.Addr, uint32(c.BadBits), c.Mismatches, sa)
}

// Diagnosis is the outcome of DiagnoseCells.
type Diagnosis struct {
	// Suspects, sorted by address: every cell that misread at least
	// once across the diagnostic iterations.
	Suspects []CellReport
	// FirstMismatch records, per failing iteration, the address of the
	// first mismatching cell in that iteration's trajectory order.
	// Because errors propagate forward along the walk, this is the
	// defect-candidate list: the true defect (or its coupling victim)
	// heads each failing iteration.
	FirstMismatch []int
	// Complexity is the Berlekamp-Massey linear complexity of the
	// observed first-iteration TDB; a fault-free memory yields exactly
	// the automaton's k.
	Complexity int
	// Ops counts memory operations spent.
	Ops uint64
}

// Detected reports whether any suspect was found.
func (d Diagnosis) Detected() bool { return len(d.Suspects) > 0 }

// DiagnoseCells runs the scheme's iterations on mem, after each one
// re-reading every cell against the predicted contents and recording
// mismatching addresses/bits.  Mirror placeholders are resolved as in
// Scheme.Run.  The first iteration's observed TDB is additionally fed
// to Berlekamp-Massey as an independent complexity witness.
func DiagnoseCells(s Scheme, mem ram.Memory) (Diagnosis, error) {
	var diag Diagnosis
	n := mem.Size()
	perCell := make(map[int]*CellReport)
	var firstObserved []gf.Elem

	resolved := make([]Config, len(s.Iters))
	for i, cfg := range s.Iters {
		if t := cfg.mirrorTarget(); t >= 0 {
			if t >= i {
				return diag, fmt.Errorf("prt: diagnose: iteration %d mirrors later iteration", i+1)
			}
			m, err := MirrorConfig(resolved[t], n)
			if err != nil {
				return diag, err
			}
			m.Verify = cfg.Verify
			cfg = m
		}
		// Diagnosis drives its own read-back; disable the in-iteration
		// extras to keep op accounting clean.
		cfg.Verify = false
		cfg.CaptureStale = false
		cfg.StaleExpect = nil
		resolved[i] = cfg
		ir, err := RunIteration(cfg, mem)
		if err != nil {
			return diag, fmt.Errorf("prt: diagnose iteration %d: %w", i+1, err)
		}
		diag.Ops += ir.Ops

		// Read back every cell against the prediction.
		addr := cfg.Addresses(n)
		want := ExpectedSequence(cfg, n)
		observed := make([]gf.Elem, n)
		first := -1
		for pos := 0; pos < n; pos++ {
			got := gf.Elem(mem.Read(addr[pos]))
			diag.Ops++
			observed[pos] = got
			if got != want[pos] {
				if first < 0 {
					first = addr[pos]
				}
				rep := perCell[addr[pos]]
				if rep == nil {
					rep = &CellReport{Addr: addr[pos], StuckAt: -1}
					perCell[addr[pos]] = rep
				}
				rep.Mismatches++
				diff := ram.Word(got ^ want[pos])
				rep.BadBits |= diff
				updateStuckHypothesis(rep, ram.Word(got), diff)
			}
		}
		if first >= 0 {
			diag.FirstMismatch = append(diag.FirstMismatch, first)
		}
		if i == 0 {
			firstObserved = observed
		}
	}

	if firstObserved != nil {
		l, err := lfsr.LinearComplexity(resolved[0].Gen.Field, firstObserved)
		if err == nil {
			diag.Complexity = l
		}
	}
	for _, rep := range perCell {
		diag.Suspects = append(diag.Suspects, *rep)
	}
	sort.Slice(diag.Suspects, func(i, j int) bool {
		return diag.Suspects[i].Addr < diag.Suspects[j].Addr
	})
	return diag, nil
}

// updateStuckHypothesis refines the per-cell stuck-at hypothesis: on
// the first error the observed value of the failing bits seeds the
// hypothesis; any later contradiction clears it.
func updateStuckHypothesis(rep *CellReport, got ram.Word, diff ram.Word) {
	// Extract the observed value of the lowest differing bit.
	var bit int
	for b := 0; b < 32; b++ {
		if diff>>uint(b)&1 == 1 {
			bit = b
			break
		}
	}
	v := int(got >> uint(bit) & 1)
	switch {
	case rep.Mismatches == 1:
		rep.StuckAt = v
	case rep.StuckAt != v:
		rep.StuckAt = -1
	}
}

// PrimarySuspect returns the best defect candidate, or nil when the
// diagnosis is clean: the address heading the most failing iterations
// (errors propagate forward along each trajectory, so the defect — or
// its coupling victim — is the first mismatch of every iteration that
// excites it).  Ties break towards the lower address.
func (d Diagnosis) PrimarySuspect() *CellReport {
	if len(d.FirstMismatch) == 0 {
		return nil
	}
	votes := map[int]int{}
	for _, a := range d.FirstMismatch {
		votes[a]++
	}
	best, bestVotes := -1, 0
	for a, v := range votes {
		if v > bestVotes || (v == bestVotes && a < best) {
			best, bestVotes = a, v
		}
	}
	for i := range d.Suspects {
		if d.Suspects[i].Addr == best {
			return &d.Suspects[i]
		}
	}
	return nil
}
