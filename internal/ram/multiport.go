package ram

import "fmt"

// PortOpKind is the action a port performs in one cycle.
type PortOpKind int

const (
	// PortIdle performs no operation this cycle.
	PortIdle PortOpKind = iota
	// PortRead reads a cell.
	PortRead
	// PortWrite writes a cell.
	PortWrite
)

func (k PortOpKind) String() string {
	switch k {
	case PortIdle:
		return "idle"
	case PortRead:
		return "read"
	case PortWrite:
		return "write"
	default:
		return fmt.Sprintf("PortOpKind(%d)", int(k))
	}
}

// PortOp is one port's action in a cycle.
type PortOp struct {
	Kind PortOpKind
	Addr int
	Data Word // for writes
}

// Idle returns a no-op port action.
func Idle() PortOp { return PortOp{Kind: PortIdle} }

// ReadOp returns a read action.
func ReadOp(addr int) PortOp { return PortOp{Kind: PortRead, Addr: addr} }

// WriteOp returns a write action.
func WriteOp(addr int, v Word) PortOp { return PortOp{Kind: PortWrite, Addr: addr, Data: v} }

// MultiPort is an n-cell, m-bit memory with P independent ports that
// operate simultaneously within a cycle.  Semantics per cycle:
//
//  1. all reads sample the state at the start of the cycle;
//  2. all writes commit afterwards; if two ports write the same cell in
//     the same cycle the lowest-numbered port wins and the event is
//     counted in WriteConflicts (real dual-port SRAMs leave this
//     undefined — the model makes it deterministic and observable).
//
// This read-before-write ordering is what lets the Fig. 2 dual-port PRT
// scheme overlap the read of cell i+1 with the write of cell i+2 and
// finish a π-iteration in 2n cycles instead of 3n operations.
type MultiPort struct {
	mem            Memory
	ports          int
	Cycles         uint64
	PortReads      []uint64
	PortWrites     []uint64
	WriteConflicts uint64
}

// NewMultiPort returns a P-port memory of n cells, m bits each, backed
// by a fresh WOM array.
func NewMultiPort(n, m, ports int) *MultiPort {
	return NewMultiPortOn(NewWOM(n, m), ports)
}

// NewMultiPortOn attaches a P-port front end to an existing backing
// memory — in particular one wrapped by a fault injector, which is how
// multi-port fault campaigns are built.
func NewMultiPortOn(mem Memory, ports int) *MultiPort {
	if ports < 1 || ports > 8 {
		panic(fmt.Sprintf("ram: port count %d out of range [1,8]", ports))
	}
	return &MultiPort{
		mem:        mem,
		ports:      ports,
		PortReads:  make([]uint64, ports),
		PortWrites: make([]uint64, ports),
	}
}

// NewDualPort returns the two-port (2P) memory of §4 of the paper.
func NewDualPort(n, m int) *MultiPort { return NewMultiPort(n, m, 2) }

// NewQuadPort returns a four-port memory (the paper's "QuadPort DSE
// family").
func NewQuadPort(n, m int) *MultiPort { return NewMultiPort(n, m, 4) }

// Ports returns the number of ports.
func (mp *MultiPort) Ports() int { return mp.ports }

// Size returns the number of cells.
func (mp *MultiPort) Size() int { return mp.mem.Size() }

// Width returns the cell width in bits.
func (mp *MultiPort) Width() int { return mp.mem.Width() }

// Cycle performs one memory cycle with one action per port (len(ops)
// must equal Ports()).  It returns the read results aligned with ops
// (entries for non-read ops are zero).
func (mp *MultiPort) Cycle(ops []PortOp) []Word {
	if len(ops) != mp.ports {
		panic(fmt.Sprintf("ram: %d ops for %d ports", len(ops), mp.ports))
	}
	mp.Cycles++
	out := make([]Word, len(ops))
	// Phase 1: sample reads against the pre-cycle state.
	for p, op := range ops {
		if op.Kind == PortRead {
			out[p] = mp.mem.Read(op.Addr)
			mp.PortReads[p]++
		}
	}
	// Phase 2: commit writes, lowest port wins conflicts.
	written := make(map[int]bool, 2)
	for p, op := range ops {
		if op.Kind != PortWrite {
			continue
		}
		mp.PortWrites[p]++
		if written[op.Addr] {
			mp.WriteConflicts++
			continue
		}
		written[op.Addr] = true
		mp.mem.Write(op.Addr, op.Data)
	}
	return out
}

// Port returns a single-port Memory view bound to port p; each Read or
// Write through the view consumes a full cycle with the other ports
// idle.  This lets single-port algorithms (March tests, single-port
// PRT) run unchanged on a multi-port device for comparison.
func (mp *MultiPort) Port(p int) Memory {
	if p < 0 || p >= mp.ports {
		panic(fmt.Sprintf("ram: port %d out of range", p))
	}
	return &portView{mp: mp, p: p}
}

type portView struct {
	mp *MultiPort
	p  int
}

func (v *portView) Read(addr int) Word {
	ops := make([]PortOp, v.mp.ports)
	for i := range ops {
		ops[i] = Idle()
	}
	ops[v.p] = ReadOp(addr)
	return v.mp.Cycle(ops)[v.p]
}

func (v *portView) Write(addr int, w Word) {
	ops := make([]PortOp, v.mp.ports)
	for i := range ops {
		ops[i] = Idle()
	}
	ops[v.p] = WriteOp(addr, w)
	v.mp.Cycle(ops)
}

func (v *portView) Size() int  { return v.mp.Size() }
func (v *portView) Width() int { return v.mp.Width() }

// Backing returns the underlying single-port array, for direct
// inspection by tests and the campaign engine.  Mutating it bypasses
// cycle accounting.
func (mp *MultiPort) Backing() Memory { return mp.mem }
