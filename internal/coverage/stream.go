// The streaming session executor and its sink folds.  Everything that
// accumulates results here must be deterministic: streaming sessions
// are property-tested byte-identical to materialized ones and to
// interrupted-then-resumed ones.
//
//faultsim:deterministic

package coverage

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// This file is the streaming session executor: a Plan whose Stream
// field is set runs its stages over a fault.Source pulled in bounded
// chunks (sim.ShardsStream / sim.ShardsCompiledStream / a chunked
// oracle), so session memory is O(Chunk × Workers) fault instances
// plus one bit per universe fault — the universe size stops being a
// memory bound.  Cross-test fault dropping is held as the cumulative
// detection bitmap: a later stage skips every fault some earlier stage
// already caught, exactly as the materialized executor's BitView path,
// and the streaming property tests assert byte-identical Results
// between the two executors for every universe family, engine and
// chunk size.
//
// Everything else — stage preparation, the program cache, ordering,
// engine fallbacks — is shared with the materialized executor.  The
// replay engines additionally require every streamed fault to support
// batch injection (all built-in fault models do); the per-fault oracle
// path has no such constraint.
//
// Durability (durable.go) composes onto the same loop: when a
// checkpoint is configured the chunk sink is wrapped to fold verdicts
// in contiguous universe order and persist the session state on a
// cadence, and a resumed session reconstructs its completed stages
// from the checkpoint and Skip()s the source past the in-flight
// stage's high-water mark.

// defaultChunk is the chunk size streaming sessions use when
// Plan.Chunk <= 0 (the faultcov -chunk flag); its own zero value
// defers to sim.DefaultChunk.
var defaultChunk atomic.Int32

// SetDefaultChunk fixes the faults-per-pull of streaming sessions
// invoked with Chunk <= 0 (n <= 0 restores sim.DefaultChunk).
func SetDefaultChunk(n int) { defaultChunk.Store(int32(n)) }

// DefaultChunk returns the effective default chunk size.
func DefaultChunk() int {
	if n := int(defaultChunk.Load()); n > 0 {
		return n
	}
	return sim.DefaultChunk
}

// CampaignStream runs a single-runner campaign over a streaming
// universe on the default engine — the bounded-memory analogue of
// Campaign.  chunk <= 0 selects the package default.  One divergence
// from Campaign: the replay engines require every streamed fault to
// support batch injection (all built-in fault models do) and fail
// loudly otherwise — a streaming session cannot probe the whole
// universe up front the way the materialized executor does before
// falling back to the oracle.  Universes of custom non-batchable
// faults must select EngineOracle explicitly.
func CampaignStream(r Runner, s *fault.Stream, mk MemoryFactory, workers, chunk int) Result {
	p := Plan{
		Runners: []Runner{r}, Stream: s, Chunk: chunk,
		Memory: mk, Workers: workers, Engine: DefaultEngine(),
		Cache: SharedProgramCache(),
	}
	return p.Run().Results[0]
}

// CompareStream is Compare over a streaming universe: one session,
// shared program cache, dropping per the process default.
func CompareStream(runners []Runner, s *fault.Stream, mk MemoryFactory, workers, chunk int) []Result {
	p := Plan{
		Runners: runners, Stream: s, Chunk: chunk,
		Memory: mk, Workers: workers, Engine: DefaultEngine(),
		Drop: DefaultDrop(), Cache: SharedProgramCache(),
	}
	return p.Run().Results
}

// runStream executes a streaming session.
func (p *Plan) runStream(ctx context.Context) *Session {
	workers := p.Workers
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	chunk := p.Chunk
	if chunk <= 0 {
		chunk = DefaultChunk()
	}
	src := p.Stream.Source
	count, exactCount := src.Count() // capacity hint; bitmaps grow if it is low

	// Partitioning: restrict the session to universe indices
	// [partLo, partHi).  Delivered indices stay universe-absolute (the
	// SubSource view plus cfg.Base), so detection bitmaps and
	// checkpoints from different partitions OR/merge exactly.
	partIdx, partCnt := p.partitionSpec()
	partLo, partHi := 0, -1
	hiBound := count // bitmap capacity: the highest index this session can touch
	if partCnt > 0 {
		if !exactCount {
			panic(fmt.Sprintf("coverage: partitioning %s requires a source with an exact Count", p.Stream.Name))
		}
		if p.KeepVectors {
			panic("coverage: KeepVectors is incompatible with a partitioned session (vectors span the full universe)")
		}
		partLo, partHi = fault.PartitionRange(count, partIdx-1, partCnt)
		src = fault.SubSource(src, partLo, partHi)
		count = partHi - partLo
		// Full word capacity up to partHi, so the last partition's
		// bitmap words match the unpartitioned run's length and the
		// merged checkpoint is byte-identical to the single-process one.
		hiBound = partHi
	}

	// Stage preparation and ordering are shared with the materialized
	// executor.  Streamed faults are assumed batch-injectable (checked
	// per batch by the replay drivers, which fail loudly otherwise).
	stages := make([]*stage, len(p.Runners))
	for i, r := range p.Runners {
		stages[i] = p.prepareStage(r, i, true)
	}
	order := p.executionOrder(stages)

	// Durability setup: an explicit Plan.Checkpoint wins, else the
	// process default (the faultcov flags).  The resume state is either
	// explicit (strict: a mismatch is a programmer error) or the
	// ambient offer, consumed only if it matches this session.
	var d *durable
	var rs *checkpoint.State
	var names []string
	cp := p.Checkpoint
	if cp == nil {
		cp = ambientCheckpoint.Load()
	}
	if cp != nil && cp.Path != "" {
		if p.KeepVectors {
			panic("coverage: KeepVectors is incompatible with checkpointing (verdict vectors are not persisted)")
		}
		mem := p.Memory()
		spec := p.specHash()
		names = make([]string, len(order))
		for i, st := range order {
			names[i] = st.runner.Name()
		}
		d = newDurable(*cp, spec, mem.Size(), mem.Width())
		if cp.Resume != nil {
			if err := validateResume(cp.Resume, spec, mem.Size(), mem.Width(), cp.Seed, names, partLo, partHi); err != nil {
				panic(err.Error())
			}
			rs = cp.Resume
		} else if amb := ambientResume.Load(); amb != nil {
			if validateResume(amb, spec, mem.Size(), mem.Width(), cp.Seed, names, partLo, partHi) == nil &&
				ambientResume.CompareAndSwap(amb, nil) {
				rs = amb
			}
		}
	}

	s := &Session{Results: make([]Result, len(p.Runners))}
	if p.KeepVectors {
		s.Vectors = make([][]Verdict, len(p.Runners))
	}
	// Sink discipline for this session's compiled streaming stages:
	// anything needing ordered delivery (checkpoint prefix cuts,
	// verdict vectors, a live progress frontier) keeps the serialized
	// sink; otherwise per-worker sinks merged at drain.
	reg0 := telemetry.Active()
	sinkMode := p.Sink
	if sinkMode == SinkAuto {
		if d != nil || p.KeepVectors || reg0.ProgressAttached() {
			sinkMode = SinkOrdered
		} else {
			sinkMode = SinkUnordered
		}
	} else if sinkMode == SinkUnordered {
		if d != nil {
			panic("coverage: the unordered sink cannot checkpoint (durable cuts need ordered delivery)")
		}
		if p.KeepVectors {
			panic("coverage: the unordered sink cannot keep verdict vectors")
		}
	}

	cum := fault.NewBitSet(hiBound)
	cumDetected := 0
	classTotal := make(map[fault.Class]int)
	classDet := make(map[fault.Class]int)
	arenas := &sim.ArenaPool{}
	reg := telemetry.Active()
	universeN := -1 // presented count of the first executed stage = |universe|
	doneStages := 0
	var doneRecs []checkpoint.StageRecord

	// Resume: seed the session accumulators from the checkpoint and
	// reconstruct the completed stages' results from their records (the
	// stage metadata — clean-run cost, cache hits — comes from the
	// preparation above, which ran either way).
	if rs != nil {
		cum = fault.BitSetFromWords(append([]uint64(nil), rs.Bits...))
		cumDetected = cum.Count()
		tallyMaps(rs.Universe, classTotal, classDet)
		universeN = int(rs.UniverseN)
		doneStages = len(rs.Done)
		doneRecs = append(doneRecs, rs.Done...)
		for _, rec := range rs.Done {
			st := stages[rec.RunnerIndex]
			res := Result{
				Runner:        rec.Runner,
				Universe:      p.Stream.Name,
				Total:         int(rec.Entered),
				Detected:      int(rec.Detected),
				ByClass:       make(map[fault.Class]ClassStat),
				OpsCleanRun:   st.cleanOps,
				FalsePositive: st.falsePositive,
			}
			applyTallies(rec.ByClass, res.ByClass)
			s.Results[rec.RunnerIndex] = res
			s.Stages = append(s.Stages, StageStat{
				Runner:      rec.Runner,
				RunnerIndex: int(rec.RunnerIndex),
				Entered:     int(rec.Entered),
				Detected:    int(rec.Detected),
				Survivors:   int(rec.Survivors),
				CacheHit:    st.cacheHit,
			})
		}
	}

	// buildState serializes the session accumulators; cur is the
	// in-flight stage's partial record (zero between stages).
	buildState := func(cur checkpoint.StageRecord, highWater int, complete bool) *checkpoint.State {
		return &checkpoint.State{
			SpecHash:    d.spec,
			Seed:        d.cfg.Seed,
			Size:        d.size,
			Width:       d.width,
			PartitionLo: int64(partLo),
			PartitionHi: int64(partHi),
			Label:       d.cfg.Label,
			UniverseN:   int64(universeN),
			StageNames:  names,
			Done:        append([]checkpoint.StageRecord(nil), doneRecs...),
			Cur:         cur,
			HighWater:   int64(highWater),
			Complete:    complete,
			Universe:    classTallies(classTotal, classDet),
			Bits:        append([]uint64(nil), cum.Words()...),
		}
	}

	for si := doneStages; si < len(order); si++ {
		st := order[si]
		// The survivor filter for this stage is the cumulative detection
		// bitmap so far, snapshotted: the sink below keeps updating cum
		// while workers read the snapshot.  (On resume the snapshot also
		// carries this stage's own pre-interrupt detections — equivalent,
		// since those indices are below the seek point and never
		// presented again.)
		var stageDrop *fault.BitSet
		if p.Drop && cumDetected > 0 {
			stageDrop = cum.Clone()
		}
		res := Result{
			Runner:        st.runner.Name(),
			Universe:      p.Stream.Name,
			ByClass:       make(map[fault.Class]ClassStat),
			OpsCleanRun:   st.cleanOps,
			FalsePositive: st.falsePositive,
		}
		base := partLo
		if rs != nil && si == doneStages && !rs.Complete {
			// Resuming into this stage: restore its partial tallies and
			// seek past the contiguous completed prefix.
			base = int(rs.HighWater)
			res.Total = int(rs.Cur.Entered)
			res.Detected = int(rs.Cur.Detected)
			applyTallies(rs.Cur.ByClass, res.ByClass)
		}
		var vec []Verdict
		if s.Vectors != nil {
			vec = make([]Verdict, count)
			if stageDrop != nil {
				for i := range vec {
					vec[i] = VerdictDropped
				}
			}
		}
		tallyUniverse := universeN < 0
		vecFill := VerdictUndetected
		if stageDrop != nil {
			vecFill = VerdictDropped // what undelivered positions mean this stage
		}
		sink := sim.ChunkSink(func(_, _ int, idx []int, faults []fault.Fault, det []bool) {
			for i, f := range faults {
				c := f.Class()
				cs := res.ByClass[c]
				cs.Total++
				res.Total++
				u := idx[i]
				for vec != nil && u >= len(vec) { // inexact Count undershot
					vec = append(vec, vecFill)
				}
				if det[i] {
					cs.Detected++
					res.Detected++
					if !cum.Get(u) {
						cum.Set(u)
						cumDetected++
						classDet[c]++
					}
					if vec != nil {
						vec[u] = VerdictDetected
					}
				} else if vec != nil {
					vec[u] = VerdictUndetected
				}
				res.ByClass[c] = cs
				if tallyUniverse {
					classTotal[c]++
				}
			}
			// Live survivor count for the progress line: the sink runs
			// serialized, so cumDetected is coherent here.
			if reg != nil && exactCount {
				reg.ReportSurvivors(int64(count - cumDetected))
			}
		})
		if d != nil {
			d.beginStage(base)
			d.snap = func(hw int) *checkpoint.State {
				return buildState(checkpoint.StageRecord{
					Runner:      st.runner.Name(),
					RunnerIndex: int32(st.index),
					Entered:     int64(res.Total),
					Detected:    int64(res.Detected),
					ByClass:     resultTallies(res.ByClass),
				}, hw, false)
			}
			sink = d.wrap(sink)
		}
		src.Reset()
		if rel := base - partLo; rel > 0 {
			// Skip is view-relative on a partitioned source; delivered
			// indices stay absolute via cfg.Base below.
			if skipped := src.Skip(rel); skipped != rel {
				panic(fmt.Sprintf("coverage: resume seek of %s to %d stopped at %d — source shorter than the checkpoint's universe",
					p.Stream.Name, base, partLo+skipped))
			}
		}
		var before telemetry.Snapshot
		if reg != nil {
			before = reg.Snapshot()
			// The stage will present the universe minus what earlier
			// stages already detected (the drop filter); an inexact Count
			// (or a mid-stage resume) leaves the progress total unknown.
			total := int64(0)
			if exactCount && base == partLo {
				total = int64(count)
				if stageDrop != nil {
					total -= int64(cumDetected)
				}
			}
			reg.BeginStage(st.runner.Name(), total)
		}
		// Compiled stages without an ordered-sink requirement run on the
		// unordered driver: per-worker accumulators, merged below.  The
		// reference paths (bitpar, oracle) and ordered sessions keep the
		// serialized sink.
		useUnordered := sinkMode == SinkUnordered && st.prog != nil
		if reg != nil {
			reg.SetSinkMode(useUnordered)
		}
		t0 := time.Now() //faultsim:ordered stage wall-clock is telemetry, reported beside the deterministic counts
		cfg := sim.StreamConfig{Chunk: chunk, Workers: workers, Drop: stageDrop, Base: base, Arenas: arenas}
		var stats *EngineStats
		var err error
		if useUnordered {
			stats, err = p.detectStreamUnordered(ctx, st, src, cfg, &res,
				cum, &cumDetected, classTotal, classDet, tallyUniverse)
		} else {
			stats, err = p.detectStream(ctx, st, src, cfg, sink)
		}
		stats.PartitionIndex = partIdx
		//faultsim:ordered stage wall-clock is telemetry, reported beside the deterministic counts
		finishStage(stats, st, res.Total, time.Since(t0), reg, before)
		res.Stats = stats
		if err != nil {
			res.Interrupted = true
			s.Interrupted = true
		}
		if tallyUniverse && err == nil {
			universeN = res.Total
		}
		s.Results[st.index] = res
		if vec != nil && err == nil {
			// Normalize to the enumerated universe size: an inexact Count
			// may have over-allocated (phantom trailing entries) or
			// undershot past the last delivered index (undelivered faults
			// keep this stage's fill meaning).
			for len(vec) < universeN {
				vec = append(vec, vecFill)
			}
			vec = vec[:universeN]
		}
		if s.Vectors != nil {
			s.Vectors[st.index] = vec
		}
		survivors := universeN - cumDetected
		if universeN < 0 {
			// Interrupted before the first stage finished enumerating:
			// the survivor count among the faults seen so far.
			survivors = res.Total - res.Detected
		}
		s.Stages = append(s.Stages, StageStat{
			Runner:      st.runner.Name(),
			RunnerIndex: st.index,
			Entered:     res.Total,
			Detected:    res.Detected,
			Survivors:   survivors,
			CacheHit:    st.cacheHit,
			Stats:       stats,
		})
		if err != nil {
			// Interrupted: flush a final checkpoint at the fold frontier
			// and stop — the remaining stages never ran.
			if d != nil {
				d.flush()
			}
			break
		}
		if d != nil {
			doneRecs = append(doneRecs, checkpoint.StageRecord{
				Runner:      st.runner.Name(),
				RunnerIndex: int32(st.index),
				Entered:     int64(res.Total),
				Detected:    int64(res.Detected),
				Survivors:   int64(survivors),
				ByClass:     resultTallies(res.ByClass),
			})
			d.snap = nil
			if si < len(order)-1 {
				// Stage-boundary checkpoint: the next stage at its range
				// start (high water partLo; 0 unpartitioned).
				next := order[si+1]
				d.write(buildState(checkpoint.StageRecord{
					Runner:      next.runner.Name(),
					RunnerIndex: int32(next.index),
				}, partLo, false))
			}
		}
		if reg != nil {
			reg.ReportSurvivors(int64(universeN - cumDetected))
			p.reportStage(reg, s.Stages[len(s.Stages)-1])
		}
	}
	if universeN < 0 {
		universeN = 0
	}

	cumRes := Result{
		Runner:      p.sessionName(),
		Universe:    p.Stream.Name,
		Total:       universeN,
		Detected:    cumDetected,
		ByClass:     make(map[fault.Class]ClassStat),
		Interrupted: s.Interrupted,
	}
	for c, total := range classTotal { //faultsim:ordered fills a map keyed by the same classes; order-insensitive
		cumRes.ByClass[c] = ClassStat{Total: total, Detected: classDet[c]}
	}
	sumCleanRuns(stages, &cumRes)
	s.Cumulative = cumRes

	if d != nil && !s.Interrupted {
		// Completion checkpoint: every stage in Done, nothing in flight.
		// Deliberately timestamp-free, so an uninterrupted run and an
		// interrupted-then-resumed run of the same campaign end with
		// byte-identical files.
		d.write(buildState(checkpoint.StageRecord{}, 0, true))
	}

	p.notifyObserver(s)
	return s
}

// partitionSpec resolves the session's partition restriction: the
// plan's explicit fields win, else the process default
// (SetDefaultPartition).  (0, 0) means unpartitioned.
func (p *Plan) partitionSpec() (index, count int) {
	if p.PartitionCount > 0 {
		if p.PartitionIndex < 1 || p.PartitionIndex > p.PartitionCount {
			panic(fmt.Sprintf("coverage: PartitionIndex %d outside [1, %d]", p.PartitionIndex, p.PartitionCount))
		}
		return p.PartitionIndex, p.PartitionCount
	}
	return DefaultPartition()
}

// detectStreamUnordered runs one compiled stage on the unordered
// driver: each worker folds its chunks into a private accumulator
// (detection bitmap plus class tallies) with no sink lock, and the
// accumulators are merged into the session state once after the
// drivers drain.  Sums and bit-ORs are order-insensitive and chunk
// index ranges are disjoint across workers, so the merged result is
// byte-identical to the serialized sink's whatever the scheduling —
// the unordered≡ordered property tests assert exactly that.  The
// whole serialization cost of the stage is the merge below, reported
// as EngineStats.MergeNanos.
func (p *Plan) detectStreamUnordered(ctx context.Context, st *stage, src fault.Source, cfg sim.StreamConfig,
	res *Result, cum *fault.BitSet, cumDetected *int, classTotal, classDet map[fault.Class]int,
	tallyUniverse bool) (*EngineStats, error) {
	nc := len(fault.Classes())
	type acc struct {
		det             *fault.BitSet
		total, detected int
		byClassTotal    []int // faults presented, by class
		byClassDet      []int // faults this stage detected, by class
		byClassNew      []int // first-ever detections, by class (vs the session prefix)
	}
	accs := make([]acc, cfg.Workers)
	sinkFor := func(w int) sim.ChunkSink {
		a := &accs[w]
		a.det = fault.NewBitSet(0)
		a.byClassTotal = make([]int, nc)
		a.byClassDet = make([]int, nc)
		a.byClassNew = make([]int, nc)
		return func(_, _ int, idx []int, faults []fault.Fault, det []bool) {
			for i, f := range faults {
				c := int(f.Class())
				a.byClassTotal[c]++
				a.total++
				if det[i] {
					a.byClassDet[c]++
					a.detected++
					u := idx[i]
					// cum is frozen during an unordered stage (the merge
					// below is the only writer), so reading it lock-free
					// here is the exact analogue of the ordered sink's
					// !cum.Get(u) check — each universe index is presented
					// at most once per stage.
					if !cum.Get(u) {
						a.byClassNew[c]++
					}
					a.det.Set(u)
				}
			}
		}
	}
	cfg.Collapse = CollapseEnabled()
	w, reps, err := sim.ShardsCompiledUnordered(ctx, st.prog, src, cfg, sinkFor)
	if err != nil && ctx.Err() == nil {
		panic(fmt.Sprintf("coverage: unordered compiled streaming replay of %s on %s: %v", st.runner.Name(), p.Stream.Name, err))
	}
	t0 := time.Now() //faultsim:ordered merge wall-clock is telemetry, reported beside the deterministic counts
	for i := range accs {
		a := &accs[i]
		if a.det == nil {
			continue // worker never started (cancelled before sinkFor)
		}
		res.Total += a.total
		res.Detected += a.detected
		for c := 0; c < nc; c++ {
			if a.byClassTotal[c] == 0 {
				continue
			}
			fc := fault.Class(c)
			cs := res.ByClass[fc]
			cs.Total += a.byClassTotal[c]
			cs.Detected += a.byClassDet[c]
			res.ByClass[fc] = cs
			if tallyUniverse {
				classTotal[fc] += a.byClassTotal[c]
			}
			if a.byClassNew[c] > 0 {
				classDet[fc] += a.byClassNew[c]
			}
		}
		cum.Or(a.det)
	}
	*cumDetected = cum.Count()
	return &EngineStats{
		Engine:     EngineCompiled,
		Workers:    w,
		Reps:       reps,
		ProgramOps: st.prog.Ops(),
		TrimmedOps: st.prog.TrimmedOps(),
		LaneWords:  st.prog.LaneWords(),
		FusedOps:   st.prog.FusedOps(),
		Sink:       SinkUnordered.String(),
		MergeNanos: time.Since(t0), //faultsim:ordered merge wall-clock is telemetry, reported beside the deterministic counts
	}, err
}

// detectStream runs one stage over the source and returns the engine
// report; verdicts flow to the sink chunk by chunk.  The error is
// non-nil exactly when ctx was cancelled (a partial run); any other
// driver failure panics, as a broken engine invariant.
func (p *Plan) detectStream(ctx context.Context, st *stage, src fault.Source, cfg sim.StreamConfig, sink sim.ChunkSink) (*EngineStats, error) {
	switch {
	case st.prog != nil:
		cfg.Collapse = CollapseEnabled()
		w, reps, err := sim.ShardsCompiledStream(ctx, st.prog, src, cfg, sink)
		if err != nil && ctx.Err() == nil {
			panic(fmt.Sprintf("coverage: compiled streaming replay of %s on %s: %v", st.runner.Name(), p.Stream.Name, err))
		}
		return &EngineStats{
			Engine:     EngineCompiled,
			Workers:    w,
			Reps:       reps,
			ProgramOps: st.prog.Ops(),
			TrimmedOps: st.prog.TrimmedOps(),
			LaneWords:  st.prog.LaneWords(),
			FusedOps:   st.prog.FusedOps(),
			Sink:       SinkOrdered.String(),
		}, err
	case st.tr != nil:
		w, reps, err := sim.ShardsStream(ctx, st.tr, src, cfg, sink)
		if err != nil && ctx.Err() == nil {
			panic(fmt.Sprintf("coverage: bitpar streaming replay of %s on %s: %v", st.runner.Name(), p.Stream.Name, err))
		}
		return &EngineStats{Engine: EngineBitParallel, Workers: w, Reps: reps, Sink: SinkOrdered.String()}, err
	default:
		// Chunked oracle: the generic driver pulls and filters chunks,
		// the replay closure runs the full algorithm once per fault.
		w, reps, err := sim.StreamShard(ctx, src, cfg, func() (func([]fault.Fault, []uint64) error, func()) {
			return func(batch []fault.Fault, det []uint64) error {
				det[0] = 0
				for i, f := range batch {
					if d, _ := st.runner.Run(f.Inject(p.Memory())); d {
						det[0] |= 1 << uint(i)
					}
				}
				return nil
			}, nil
		}, sink)
		if err != nil && ctx.Err() == nil {
			panic(fmt.Sprintf("coverage: oracle streaming of %s on %s: %v", st.runner.Name(), p.Stream.Name, err))
		}
		return &EngineStats{Engine: EngineOracle, Workers: w, Reps: reps, Sink: SinkOrdered.String()}, err
	}
}
