package repair

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/march"
	"repro/internal/prt"
	"repro/internal/ram"
)

func TestGeometry(t *testing.T) {
	g := Geometry{Rows: 4, Cols: 8}
	if g.Size() != 32 {
		t.Fatal("size wrong")
	}
	if err := g.Validate(32); err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(33); err == nil {
		t.Error("size mismatch accepted")
	}
	if err := (Geometry{Rows: 0, Cols: 8}).Validate(0); err == nil {
		t.Error("degenerate geometry accepted")
	}
	r, c := g.RC(19)
	if r != 2 || c != 3 {
		t.Errorf("RC(19) = %d,%d", r, c)
	}
	if g.Addr(2, 3) != 19 {
		t.Error("Addr inverse wrong")
	}
}

func TestAllocateSingleDefect(t *testing.T) {
	g := Geometry{Rows: 8, Cols: 8}
	a := Allocate(g, []int{19}, 1, 1)
	if !a.OK() {
		t.Fatalf("single defect unrepairable: %+v", a)
	}
	if len(a.RepairRows)+len(a.RepairCols) != 1 {
		t.Errorf("single defect should use one spare: %+v", a)
	}
}

func TestAllocateMustRepairRow(t *testing.T) {
	g := Geometry{Rows: 8, Cols: 8}
	// Four defects on row 2 with only 1 spare column available: the
	// row MUST take the spare row.
	defects := []int{g.Addr(2, 1), g.Addr(2, 3), g.Addr(2, 5), g.Addr(2, 7)}
	a := Allocate(g, defects, 1, 1)
	if !a.OK() {
		t.Fatalf("must-repair case failed: %+v", a)
	}
	if len(a.RepairRows) != 1 || a.RepairRows[0] != 2 {
		t.Errorf("row 2 not must-repaired: %+v", a)
	}
}

func TestAllocateCross(t *testing.T) {
	g := Geometry{Rows: 8, Cols: 8}
	// A row of defects and a column of defects crossing it.
	var defects []int
	for c := 0; c < 8; c++ {
		defects = append(defects, g.Addr(3, c))
	}
	for r := 0; r < 8; r++ {
		defects = append(defects, g.Addr(r, 5))
	}
	a := Allocate(g, defects, 1, 1)
	if !a.OK() {
		t.Fatalf("cross pattern unrepairable with 1+1 spares: %+v", a)
	}
	if len(a.RepairRows) != 1 || len(a.RepairCols) != 1 {
		t.Errorf("cross should use one of each: %+v", a)
	}
}

func TestAllocateExhaustsSpares(t *testing.T) {
	g := Geometry{Rows: 4, Cols: 4}
	// A diagonal of 4 defects but only 1 spare row + 1 spare column.
	defects := []int{g.Addr(0, 0), g.Addr(1, 1), g.Addr(2, 2), g.Addr(3, 3)}
	a := Allocate(g, defects, 1, 1)
	if a.OK() {
		t.Fatal("diagonal of 4 should not be repairable with 1+1")
	}
	if len(a.Unrepairable) != 2 {
		t.Errorf("expected 2 uncovered defects, got %v", a.Unrepairable)
	}
}

func TestAllocateNoDefects(t *testing.T) {
	a := Allocate(Geometry{Rows: 4, Cols: 4}, nil, 1, 1)
	if !a.OK() || len(a.RepairRows)+len(a.RepairCols) != 0 {
		t.Errorf("empty defect list should allocate nothing: %+v", a)
	}
}

func TestApplyRedirects(t *testing.T) {
	g := Geometry{Rows: 4, Cols: 8}
	base := ram.NewWOM(32, 4)
	rep, err := Apply(base, g, Allocation{RepairRows: []int{1}, RepairCols: []int{6}})
	if err != nil {
		t.Fatal(err)
	}
	// Writes into the repaired row land in the spare, not the base.
	rep.Write(g.Addr(1, 2), 0xA)
	if base.Read(g.Addr(1, 2)) != 0 {
		t.Error("write leaked into the defective row")
	}
	if rep.Read(g.Addr(1, 2)) != 0xA {
		t.Error("spare row readback failed")
	}
	// Repaired column too.
	rep.Write(g.Addr(3, 6), 0x5)
	if rep.Read(g.Addr(3, 6)) != 0x5 || base.Read(g.Addr(3, 6)) != 0 {
		t.Error("spare column redirect failed")
	}
	// Unrepaired cells hit the base.
	rep.Write(g.Addr(2, 2), 0x7)
	if base.Read(g.Addr(2, 2)) != 0x7 {
		t.Error("healthy cell not in base array")
	}
	if rep.Size() != 32 || rep.Width() != 4 {
		t.Error("geometry changed by repair")
	}
}

func TestApplyValidation(t *testing.T) {
	g := Geometry{Rows: 4, Cols: 8}
	if _, err := Apply(ram.NewWOM(16, 4), g, Allocation{}); err == nil {
		t.Error("geometry mismatch accepted")
	}
	if _, err := Apply(ram.NewWOM(32, 4), g, Allocation{RepairRows: []int{9}}); err == nil {
		t.Error("out-of-grid row accepted")
	}
	if _, err := Apply(ram.NewWOM(32, 4), g, Allocation{RepairCols: []int{8}}); err == nil {
		t.Error("out-of-grid column accepted")
	}
}

// TestEndToEndTestDiagnoseRepairRetest is the full production flow on
// a memory with a defective row: self-test fails, diagnosis feeds the
// allocator, the repaired array passes.
func TestEndToEndTestDiagnoseRepairRetest(t *testing.T) {
	g := Geometry{Rows: 8, Cols: 8}
	mkBroken := func() ram.Memory {
		m := ram.Memory(ram.NewWOM(64, 4))
		// Three stuck cells on row 5.
		for _, col := range []int{1, 4, 6} {
			m = fault.SAF{Cell: g.Addr(5, col), Bit: 0, Value: 1}.Inject(m)
		}
		return m
	}
	scheme := prt.PaperWOMScheme3()

	// 1. Detect with the cheap PRT pass, then localise with the
	// repair-grade March pass (no error propagation).
	res0, err := scheme.Run(mkBroken())
	if err != nil {
		t.Fatal(err)
	}
	if !res0.Detected {
		t.Fatal("defective row not detected by PRT")
	}
	defects := march.FailingAddresses(march.MarchCMinus(), mkBroken(), march.DataBackgrounds(4))
	if len(defects) != 3 {
		t.Fatalf("March localisation found %v, want the 3 stuck cells", defects)
	}

	// 2. Allocate spares (1 row + 1 column available).
	alloc := Allocate(g, defects, 1, 1)
	if !alloc.OK() {
		t.Fatalf("allocation failed: %+v", alloc)
	}

	// 3. Apply and retest.
	repaired, err := Apply(mkBroken(), g, alloc)
	if err != nil {
		t.Fatal(err)
	}
	res, err := scheme.Run(repaired)
	if err != nil {
		t.Fatal(err)
	}
	if res.Detected {
		t.Errorf("repaired memory still fails (repair rows %v cols %v)",
			alloc.RepairRows, alloc.RepairCols)
	}
}
