package fault

import (
	"fmt"
)

// rng is a small deterministic xorshift64* generator so fault-universe
// sampling is reproducible across platforms and Go releases (math/rand
// stream stability is not guaranteed between major versions).
type rng struct{ s uint64 }

func newRNG(seed int64) *rng {
	s := uint64(seed)
	if s == 0 {
		s = 0x9E3779B97F4A7C15
	}
	return &rng{s: s}
}

func (r *rng) next() uint64 {
	r.s ^= r.s >> 12
	r.s ^= r.s << 25
	r.s ^= r.s >> 27
	return r.s * 0x2545F4914F6CDD1D
}

// intn returns a uniform value in [0,n).
func (r *rng) intn(n int) int {
	if n <= 0 {
		panic("fault: intn bound must be positive")
	}
	return int(r.next() % uint64(n))
}

// SingleCellUniverse enumerates every SAF and TF instance of an
// n-cell, m-bit memory: 4 faults per bit (SA0, SA1, TF↑, TF↓).
func SingleCellUniverse(n, m int) []Fault {
	return Collect(SingleCellSource(n, m))
}

// StuckOpenUniverse enumerates one SOF per cell.
func StuckOpenUniverse(n int) []Fault {
	return Collect(StuckOpenSource(n))
}

// RetentionUniverse enumerates DRF faults (decay to 0 and to 1) for
// every bit, with the given decay delay in operations.
func RetentionUniverse(n, m int, delay uint64) []Fault {
	return Collect(RetentionSource(n, m, delay))
}

// DecoderUniverse enumerates address-decoder faults: for each address,
// one AFNone, plus AFAlias and AFMulti against a deterministic partner
// (the next address, wrapping) — the functional reductions of van de
// Goor's four decoder fault classes.
func DecoderUniverse(n int) []Fault {
	return Collect(DecoderSource(n))
}

// CouplingPair is an aggressor/victim bit pair used by the coupling
// universe builders.
type CouplingPair struct {
	AggCell, AggBit int
	VicCell, VicBit int
}

// SamplePairs draws count distinct inter-cell aggressor/victim bit
// pairs uniformly (deterministically from seed).  n*m must be >= 2.
func SamplePairs(n, m, count int, seed int64) []CouplingPair {
	if n < 2 {
		panic("fault: coupling pairs need at least 2 cells")
	}
	r := newRNG(seed)
	seen := make(map[[4]int]bool, count)
	out := make([]CouplingPair, 0, count)
	for len(out) < count {
		p := CouplingPair{
			AggCell: r.intn(n), AggBit: r.intn(m),
			VicCell: r.intn(n), VicBit: r.intn(m),
		}
		if p.AggCell == p.VicCell {
			continue // intra-word pairs are generated separately
		}
		key := [4]int{p.AggCell, p.AggBit, p.VicCell, p.VicBit}
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, p)
	}
	return out
}

// AdjacentPairs returns all aggressor/victim pairs between physically
// neighbouring cells (c, c+1) in both directions, bit 0 to bit 0 —
// the classical two-cell coupling locality assumption.
func AdjacentPairs(n int) []CouplingPair {
	out := make([]CouplingPair, 0, 2*(n-1))
	for c := 0; c+1 < n; c++ {
		out = append(out,
			CouplingPair{AggCell: c, VicCell: c + 1},
			CouplingPair{AggCell: c + 1, VicCell: c},
		)
	}
	return out
}

// CouplingUniverse expands each pair into the full sub-type set:
// 2 CFin (↑,↓), 4 CFid (↑/↓ × forced 0/1), 4 CFst (aggressor 0/1 ×
// forced 0/1, skipping the two fault-free combinations is not possible
// — all four force the victim) and 2 BF (AND, OR), i.e. 12 faults per
// pair.
func CouplingUniverse(pairs []CouplingPair) []Fault {
	return Collect(CouplingSource(pairs))
}

// IntraWordUniverse enumerates intra-word coupling faults for every
// ordered bit pair of every cell: CFin ↑/↓ and CFid ↑/↓ × 0/1 (6 per
// ordered pair).  Requires m >= 2.
func IntraWordUniverse(n, m int) []Fault {
	return Collect(IntraWordSource(n, m))
}

// Universe is a named collection of faults for a campaign.
type Universe struct {
	Name   string
	Faults []Fault
}

// ByClass groups the universe's faults per class, preserving order.
func (u Universe) ByClass() map[Class][]Fault {
	out := make(map[Class][]Fault)
	for _, f := range u.Faults {
		out[f.Class()] = append(out[f.Class()], f)
	}
	return out
}

// Len returns the number of faults.
func (u Universe) Len() int { return len(u.Faults) }

// StandardUniverse assembles the evaluation universe used by the
// experiment harness for an n-cell, m-bit memory: all single-cell
// faults, all stuck-open faults, decoder faults, adjacent-cell coupling
// faults, and (for m >= 2) intra-word faults on every cell.
// couplingSamples > 0 adds that many random long-distance pairs.
func StandardUniverse(n, m, couplingSamples int, seed int64) Universe {
	var fs []Fault
	fs = append(fs, SingleCellUniverse(n, m)...)
	fs = append(fs, StuckOpenUniverse(n)...)
	fs = append(fs, DecoderUniverse(n)...)
	pairs := AdjacentPairs(n)
	if couplingSamples > 0 {
		pairs = append(pairs, SamplePairs(n, m, couplingSamples, seed)...)
	}
	fs = append(fs, CouplingUniverse(pairs)...)
	if m >= 2 {
		fs = append(fs, IntraWordUniverse(n, m)...)
	}
	return Universe{
		Name:   fmt.Sprintf("standard(n=%d,m=%d,+%d pairs)", n, m, couplingSamples),
		Faults: fs,
	}
}
