package a

import "context"

// reader is a stand-in for the fault-hook interfaces the kernels call
// through: passing a pointer receiver never boxes.
type reader interface{ read() int }

type cell struct{ v int }

func (c *cell) read() int { return c.v }

func observe(r reader) int { return r.read() }

// cleanHot shows the allowed hot-path patterns: constant-size array
// values, pointer-to-interface conversions, appends into storage
// re-sliced to zero length, copy, bit twiddling, and the non-blocking
// cancellation poll against a possibly-nil Done channel.
//
//faultsim:hotpath
func cleanHot(ctx context.Context, f *frame, scratch []int, lanes []uint64) int {
	var window [8]int // array value: stack-allocated, allowed
	kept := scratch[:0]
	for i, v := range scratch {
		if v != 0 {
			kept = append(kept, v) // append into re-sliced local: allowed
		}
		window[i&7] = v
	}
	c := cell{v: len(kept)} // struct value literal: allowed
	total := observe(&c)    // pointer to interface: no boxing
	done := ctx.Done()
	for i := range lanes {
		select { // one comm case + default: the cancellation poll
		case <-done:
			return total
		default:
		}
		lanes[i] = lanes[i]&^1 | uint64(window[i&7]&1)
		total += int(lanes[i] & 1)
	}
	copy(scratch, kept)
	return total
}

// justified shows the waiver path: a justification suppresses, a bare
// waiver does not.
//
//faultsim:hotpath
func justified(f *frame, n int) {
	//faultsim:alloc-ok cold start-up path, runs once per worker
	f.buf = make([]int, n)
	f.buf = append(f.buf, n) //faultsim:alloc-ok amortized growth, capacity retained across batches
	//faultsim:alloc-ok
	f.dirty = make([]int32, n) // want `hotpath: make allocates \(//faultsim:alloc-ok requires a justification string\)`
}
