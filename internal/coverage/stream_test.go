package coverage

import (
	"fmt"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/fault"
	"repro/internal/march"
	"repro/internal/prt"
	"repro/internal/sim"
)

// The streaming-equivalence property (this PR's acceptance criterion):
// for every universe family and all three engines, a streaming session
// produces Results byte-identical to the materialized session over the
// collected universe — across chunk sizes {1, 7, 4096}, with dropping
// on and off.  Stats is diagnostic metadata outside the contract
// (Reps and Workers legitimately differ between the executors) and is
// zeroed before comparing.

type streamFamily struct {
	name    string
	src     fault.Source
	mk      MemoryFactory
	runners []Runner
}

func streamFamilies() []streamFamily {
	gen := prt.PaperWOMConfig().Gen
	bgen := prt.PaperBOMConfig().Gen
	bgs := march.DataBackgrounds(4)
	wom := womFactory(16, 4)
	bom := bomFactory(16)
	womRunners := []Runner{
		MarchRunner(march.MATSPlus(), bgs),
		PRTRunner(prt.StandardScheme3(gen)),
	}
	bomRunners := []Runner{
		MarchRunner(march.MarchCMinus(), nil),
		PRTRunner(prt.StandardScheme3(bgen)),
	}
	pairs := append(fault.AdjacentPairs(16), fault.SamplePairs(16, 4, 8, 7)...)
	return []streamFamily{
		{"single-cell", fault.SingleCellSource(16, 4), wom, womRunners},
		{"stuck-open", fault.StuckOpenSource(16), wom, womRunners},
		{"retention", fault.RetentionSource(16, 4, 16), wom, womRunners},
		{"decoder", fault.DecoderSource(16), wom, womRunners},
		{"coupling", fault.CouplingSource(pairs), wom, womRunners},
		{"full-coupling", fault.FullCouplingSource(9), bom, bomRunners},
		{"intra-word", fault.IntraWordSource(16, 4), wom, womRunners},
		{"npsf", fault.NPSFSource(16, 4, 3), bom, bomRunners},
		{"anpsf", fault.ANPSFSource(16, 4, 5), bom, bomRunners},
	}
}

func assertSessionsEqual(t *testing.T, label string, want, got *Session) {
	t.Helper()
	for i := range want.Results {
		w, g := want.Results[i], got.Results[i]
		w.Stats, g.Stats = nil, nil
		if !reflect.DeepEqual(w, g) {
			t.Errorf("%s runner %d: streaming Result differs\nmaterialized: %+v\nstreaming:    %+v", label, i, w, g)
		}
	}
	if !reflect.DeepEqual(want.Cumulative, got.Cumulative) {
		t.Errorf("%s: cumulative differs\nmaterialized: %+v\nstreaming:    %+v", label, want.Cumulative, got.Cumulative)
	}
	if !reflect.DeepEqual(want.Vectors, got.Vectors) {
		t.Errorf("%s: verdict vectors differ", label)
	}
	if len(want.Stages) != len(got.Stages) {
		t.Fatalf("%s: %d stages, want %d", label, len(got.Stages), len(want.Stages))
	}
	for i := range want.Stages {
		w, g := want.Stages[i], got.Stages[i]
		if w.Runner != g.Runner || w.Entered != g.Entered || w.Detected != g.Detected || w.Survivors != g.Survivors {
			t.Errorf("%s stage %d: %s %d/%d→%d, want %s %d/%d→%d", label, i,
				g.Runner, g.Detected, g.Entered, g.Survivors,
				w.Runner, w.Detected, w.Entered, w.Survivors)
		}
	}
}

func TestStreamingMatchesMaterialized(t *testing.T) {
	engines := []Engine{EngineOracle, EngineBitParallel, EngineCompiled}
	chunks := []int{1, 7, 4096}
	families := streamFamilies()
	if testing.Short() {
		engines = engines[1:] // drop the slow chunk-1 oracle under -race
		chunks = []int{7}
		families = families[:4]
	}
	for _, fam := range families {
		u := fault.Universe{Name: fam.name, Faults: fault.Collect(fam.src)}
		for _, engine := range engines {
			for _, drop := range []bool{false, true} {
				base := (&Plan{
					Runners: fam.runners, Universe: u, Memory: fam.mk,
					Workers: 4, Engine: engine, Drop: drop, KeepVectors: true,
				}).Run()
				for _, chunk := range chunks {
					label := fmt.Sprintf("%s [%s drop=%v chunk=%d]", fam.name, engine, drop, chunk)
					got := (&Plan{
						Runners: fam.runners,
						Stream:  &fault.Stream{Name: fam.name, Source: fam.src},
						Chunk:   chunk, Memory: fam.mk,
						Workers: 4, Engine: engine, Drop: drop, KeepVectors: true,
					}).Run()
					assertSessionsEqual(t, label, base, got)
				}
			}
		}
	}
}

// Streaming sessions must also respect execution ordering and the
// program cache, like their materialized counterparts.
func TestStreamingCheapestFirstAndCache(t *testing.T) {
	fam := streamFamilies()[0]
	u := fault.Universe{Name: fam.name, Faults: fault.Collect(fam.src)}
	cache := sim.NewProgramCache()
	mkPlan := func(stream bool) *Plan {
		p := &Plan{
			Runners: fam.runners, Memory: fam.mk, Workers: 4,
			Engine: EngineCompiled, Drop: true, Order: OrderCheapestFirst,
			KeepVectors: true, Cache: cache,
		}
		if stream {
			p.Stream = &fault.Stream{Name: fam.name, Source: fam.src}
			p.Chunk = 64
		} else {
			p.Universe = u
		}
		return p
	}
	want := mkPlan(false).Run()
	got := mkPlan(true).Run()
	assertSessionsEqual(t, "cheapest-first", want, got)
	// Second streaming run: every stage must hit the program cache.
	again := mkPlan(true).Run()
	for i, st := range again.Stages {
		if !st.CacheHit {
			t.Errorf("stage %d (%s): expected a program cache hit on the second run", i, st.Runner)
		}
	}
	assertSessionsEqual(t, "cached rerun", want, again)
}

// guardSource interposes on a Source to sample the live heap every few
// chunk pulls.
type guardSource struct {
	fault.Source
	pulls int
	every int
	cb    func()
}

func (g *guardSource) Next(dst []fault.Fault) (int, bool) {
	g.pulls++
	if g.pulls%g.every == 0 {
		g.cb()
	}
	return g.Source.Next(dst)
}

// TestStreamingMemoryBoundedByChunk is the memory guard: an exhaustive
// coupling universe of ~783K instances streams through the compiled
// engine with a 2K chunk while the live heap (sampled after forced
// GCs mid-run) must stay within a small constant budget — materializing
// the same universe costs ~50 MB of fault headers alone, so an O(
// universe) regression trips the assertion with a wide margin.
func TestStreamingMemoryBoundedByChunk(t *testing.T) {
	if testing.Short() {
		t.Skip("heap-sampling guard: skipped under -short/-race")
	}
	const n = 256
	const chunkSize = 2048
	src := fault.FullCouplingSource(n)
	count, _ := src.Count()
	runtime.GC()
	var m0 runtime.MemStats
	runtime.ReadMemStats(&m0)
	var peak uint64
	g := &guardSource{Source: src, every: 48, cb: func() {
		runtime.GC()
		var m runtime.MemStats
		runtime.ReadMemStats(&m)
		if m.HeapAlloc > peak {
			peak = m.HeapAlloc
		}
	}}
	p := Plan{
		Runners: []Runner{MarchRunner(march.MATSPlus(), nil)},
		Stream:  &fault.Stream{Name: "cf-exhaustive", Source: g},
		Chunk:   chunkSize,
		Memory:  bomFactory(n),
		Workers: 4,
		Engine:  EngineCompiled,
	}
	res := p.Run().Results[0]
	if res.Total != count {
		t.Fatalf("streamed %d faults, want %d", res.Total, count)
	}
	if g.pulls < count/chunkSize {
		t.Fatalf("only %d chunk pulls for %d faults at chunk %d", g.pulls, count, chunkSize)
	}
	const budget = 16 << 20 // chunk buffers + arenas + bitmaps + GC slack
	if peak > m0.HeapAlloc+budget {
		t.Errorf("peak live heap grew %d bytes over baseline (budget %d): fault storage is not O(chunk)",
			peak-m0.HeapAlloc, budget)
	}
}
