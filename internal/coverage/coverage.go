// Package coverage runs fault-injection campaigns: a test algorithm ×
// a fault universe → per-class detection statistics.  It is the engine
// behind the quantitative experiments (E4, E5, E6, E9, E10) comparing
// pseudo-ring testing with the March baselines.
package coverage

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/fault"
	"repro/internal/march"
	"repro/internal/prt"
	"repro/internal/ram"
	"repro/internal/sim"
)

// Runner is a memory test algorithm under evaluation.
type Runner interface {
	// Name labels the algorithm in reports.
	Name() string
	// Run executes the test on mem and reports whether a fault was
	// detected and how many memory operations were spent.
	Run(mem ram.Memory) (detected bool, ops uint64)
}

// ReplaySafe marks runners eligible for the bit-parallel trace-replay
// engine: the operation schedule is deterministic and independent of
// read values, every value-dependent write is annotated as an affine
// function of preceding reads (ram.TraceAnnotator), and detection is
// exactly "some checked read diverges from its fault-free value".
// Runners with aliasing comparators (MISR compression of multi-read
// streams) or un-annotated adaptive stimuli must not implement it —
// they stay on the per-fault oracle.
type ReplaySafe interface {
	Runner
	// ReplaySafe is a marker method.
	ReplaySafe()
}

// Engine selects the campaign execution strategy.
type Engine int

const (
	// EngineBitParallel replays a recorded trace over 64-machine
	// batches (package sim) and falls back to the oracle per-universe
	// when the runner or a fault cannot take the fast path.
	EngineBitParallel Engine = iota
	// EngineOracle re-runs the full algorithm once per injected fault —
	// the reference semantics every optimisation is measured against.
	EngineOracle
)

func (e Engine) String() string {
	if e == EngineOracle {
		return "oracle"
	}
	return "bitpar"
}

// ParseEngine converts a -engine flag value.
func ParseEngine(s string) (Engine, error) {
	switch s {
	case "bitpar", "bit-parallel", "sim":
		return EngineBitParallel, nil
	case "oracle", "reference":
		return EngineOracle, nil
	}
	return 0, fmt.Errorf("coverage: unknown engine %q (want oracle or bitpar)", s)
}

// defaultEngine is the engine Campaign uses; the bit-parallel path is
// the default fast path and is property-tested to produce results
// byte-identical to the oracle.
var defaultEngine atomic.Int32

// SetDefaultEngine switches the engine used by Campaign (and so by
// every experiment table).
func SetDefaultEngine(e Engine) { defaultEngine.Store(int32(e)) }

// DefaultEngine returns the engine Campaign currently uses.
func DefaultEngine() Engine { return Engine(defaultEngine.Load()) }

// MemoryFactory builds a fresh fault-free memory for each trial.
type MemoryFactory func() ram.Memory

// ClassStat is the per-fault-class tally.
type ClassStat struct {
	Total    int
	Detected int
}

// Ratio returns the detection ratio (0 when the class is empty).
func (c ClassStat) Ratio() float64 {
	if c.Total == 0 {
		return 0
	}
	return float64(c.Detected) / float64(c.Total)
}

// Result aggregates one campaign.
type Result struct {
	Runner   string
	Universe string
	Total    int
	Detected int
	ByClass  map[fault.Class]ClassStat
	// OpsCleanRun is the operation count of the algorithm on a
	// fault-free memory (the test length).
	OpsCleanRun uint64
	// FalsePositive is set when the algorithm flags a fault-free
	// memory — a broken configuration.
	FalsePositive bool
}

// Coverage returns the overall detection ratio.
func (r Result) Coverage() float64 {
	if r.Total == 0 {
		return 0
	}
	return float64(r.Detected) / float64(r.Total)
}

// Classes returns the classes present, in canonical order.
func (r Result) Classes() []fault.Class {
	var out []fault.Class
	for c := range r.ByClass {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Campaign injects every fault of the universe into a fresh memory and
// runs the algorithm, fanning trials across workers goroutines
// (0 = GOMAXPROCS).  Results are deterministic regardless of the
// worker count and identical for both engines (the bit-parallel path
// is property-tested against the oracle).
func Campaign(r Runner, u fault.Universe, mk MemoryFactory, workers int) Result {
	return CampaignEngine(r, u, mk, workers, DefaultEngine())
}

// CampaignEngine is Campaign with an explicit engine choice.
func CampaignEngine(r Runner, u fault.Universe, mk MemoryFactory, workers int, engine Engine) Result {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	res := Result{
		Runner:   r.Name(),
		Universe: u.Name,
		Total:    len(u.Faults),
		ByClass:  make(map[fault.Class]ClassStat),
	}
	// Clean baseline; under the bit-parallel engine this one run also
	// records the replay trace.
	var detected []bool
	_, replaySafe := r.(ReplaySafe)
	if engine == EngineBitParallel && replaySafe && sim.Batchable(u.Faults) {
		tr, cleanDetected, cleanOps := sim.Record(mk(), r.Run)
		res.OpsCleanRun = cleanOps
		res.FalsePositive = cleanDetected
		// A false-positive clean run breaks the checked-read criterion
		// (clean values no longer equal the algorithm's expectations):
		// keep the oracle semantics instead.
		if !cleanDetected && tr.Replayable() {
			d, err := sim.Shards(tr, u.Faults, workers)
			if err != nil {
				// Both non-batchable faults and non-replayable traces
				// were pre-checked, so an error here is a broken
				// invariant in the engine — failing loudly beats
				// silently delivering correct-but-slow oracle results
				// under the bitpar label.
				panic(fmt.Sprintf("coverage: bit-parallel replay of %s on %s: %v", r.Name(), u.Name, err))
			}
			detected = d
		}
	} else {
		cleanDetected, cleanOps := r.Run(mk())
		res.OpsCleanRun = cleanOps
		res.FalsePositive = cleanDetected
	}
	if detected == nil {
		detected = oracleDetect(r, u, mk, workers)
	}

	for i, f := range u.Faults {
		cs := res.ByClass[f.Class()]
		cs.Total++
		if detected[i] {
			cs.Detected++
			res.Detected++
		}
		res.ByClass[f.Class()] = cs
	}
	return res
}

// oracleDetect is the reference path: one full algorithm run per
// injected fault, distributed over workers with an atomic cursor (no
// producer goroutine or channel hand-off contention on large
// universes).
func oracleDetect(r Runner, u fault.Universe, mk MemoryFactory, workers int) []bool {
	detected := make([]bool, len(u.Faults))
	if workers > len(u.Faults) {
		workers = len(u.Faults)
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				idx := int(cursor.Add(1)) - 1
				if idx >= len(u.Faults) {
					return
				}
				mem := u.Faults[idx].Inject(mk())
				d, _ := r.Run(mem)
				detected[idx] = d
			}
		}()
	}
	wg.Wait()
	return detected
}

// Sum aggregates the detected/total counts over several fault classes.
func Sum(byClass map[fault.Class]ClassStat, classes ...fault.Class) (detected, total int) {
	for _, c := range classes {
		s := byClass[c]
		detected += s.Detected
		total += s.Total
	}
	return detected, total
}

// Compare runs several algorithms over the same universe.
func Compare(runners []Runner, u fault.Universe, mk MemoryFactory, workers int) []Result {
	out := make([]Result, len(runners))
	for i, r := range runners {
		out[i] = Campaign(r, u, mk, workers)
	}
	return out
}

// --- runner adapters ---

type marchRunner struct {
	test        march.Test
	backgrounds []ram.Word
}

// MarchRunner adapts a March algorithm; backgrounds nil means the
// single all-zero background.
func MarchRunner(t march.Test, backgrounds []ram.Word) Runner {
	if len(backgrounds) == 0 {
		backgrounds = []ram.Word{0}
	}
	return marchRunner{test: t, backgrounds: backgrounds}
}

func (m marchRunner) Name() string { return m.test.Name }

// ReplaySafe implements ReplaySafe: March stimuli are literal and
// every read is compared against its expected background value.
func (marchRunner) ReplaySafe() {}

func (m marchRunner) Run(mem ram.Memory) (bool, uint64) {
	r := march.RunBackgrounds(m.test, mem, m.backgrounds)
	return r.Detected, r.Ops
}

type prtRunner struct{ scheme prt.Scheme }

// PRTRunner adapts a pseudo-ring scheme.
func PRTRunner(s prt.Scheme) Runner { return prtRunner{scheme: s} }

func (p prtRunner) Name() string { return p.scheme.Name }

// ReplaySafe implements ReplaySafe: the π-test's recurrence writes are
// annotated as affine maps of the preceding reads, and all detection
// (signature, stale capture, verify) compares reads against fault-free
// predictions.
func (prtRunner) ReplaySafe() {}

func (p prtRunner) Run(mem ram.Memory) (bool, uint64) {
	r, err := p.scheme.Run(mem)
	if err != nil {
		panic(fmt.Sprintf("coverage: scheme %s: %v", p.scheme.Name, err))
	}
	return r.Detected, r.Ops
}

type bitSlicedRunner struct {
	name string
	cfgs []prt.BitSlicedConfig
}

// BitSlicedRunner adapts a bit-sliced lane scheme.
func BitSlicedRunner(name string, cfgs []prt.BitSlicedConfig) Runner {
	return bitSlicedRunner{name: name, cfgs: cfgs}
}

func (b bitSlicedRunner) Name() string { return b.name }

// ReplaySafe implements ReplaySafe: the lane recurrences are annotated
// bit-diagonal linear maps and detection compares Fin and read-back
// values against per-lane predictions.
func (bitSlicedRunner) ReplaySafe() {}

func (b bitSlicedRunner) Run(mem ram.Memory) (bool, uint64) {
	r, err := prt.RunBitSlicedScheme(b.cfgs, mem)
	if err != nil {
		panic(fmt.Sprintf("coverage: bit-sliced %s: %v", b.name, err))
	}
	return r.Detected, r.Ops
}

type dualPortRunner struct {
	name string
	run  func(mp *ram.MultiPort) (bool, uint64, error)
}

// DualPortRunner adapts a dual-port scheme; the faulty memory is
// wrapped with a two-port front end.
func DualPortRunner(name string, run func(mp *ram.MultiPort) (bool, uint64, error)) Runner {
	return dualPortRunner{name: name, run: run}
}

func (d dualPortRunner) Name() string { return d.name }

func (d dualPortRunner) Run(mem ram.Memory) (bool, uint64) {
	mp := ram.NewMultiPortOn(mem, 2)
	det, cycles, err := d.run(mp)
	if err != nil {
		panic(fmt.Sprintf("coverage: dual-port %s: %v", d.name, err))
	}
	return det, cycles
}
