// Command faultvet is the repo's custom vet tool: a go/analysis
// multichecker bundling the analyzers that enforce the load-bearing
// invariants of the replay pipeline at compile time —
//
//	hotpathalloc   no alloc-inducing constructs in //faultsim:hotpath code
//	deterministic  no map/select/clock/global-rand nondeterminism in
//	               //faultsim:deterministic code
//	ctxflow        context.Context flows caller-to-callee, first
//	               parameter, never stored
//	syncerr        fsync/close/rename errors checked in
//	               //faultsim:durable code
//
// It speaks the unitchecker protocol, so it runs under the go command:
//
//	go build -o faultvet ./cmd/faultvet
//	go vet -vettool=$PWD/faultvet ./...
//
// See internal/analysis/doc.go for the invariant catalogue and the
// marker-comment conventions.
package main

import (
	"golang.org/x/tools/go/analysis/unitchecker"

	"repro/internal/analysis/ctxflow"
	"repro/internal/analysis/deterministic"
	"repro/internal/analysis/hotpathalloc"
	"repro/internal/analysis/syncerr"
)

func main() {
	unitchecker.Main(
		hotpathalloc.Analyzer,
		deterministic.Analyzer,
		ctxflow.Analyzer,
		syncerr.Analyzer,
	)
}
