package sim

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/fault"
)

// BatchSize is the number of machines simulated per replay pass — one
// per bit of the lane words.
const BatchSize = 64

// Batchable reports whether every fault of the slice supports batch
// injection, i.e. whether the whole universe can take the bit-parallel
// path.
func Batchable(faults []fault.Fault) bool {
	for _, f := range faults {
		if _, ok := f.(fault.BatchInjector); !ok {
			return false
		}
	}
	return true
}

// Shards replays the trace over the whole fault universe, partitioned
// into 64-machine batches distributed across workers goroutines
// (0 = GOMAXPROCS) with an atomic cursor.  detected[i] reports fault
// faults[i]; every batch writes a disjoint slice segment, so the
// result is deterministic regardless of the worker count.
func Shards(tr *Trace, faults []fault.Fault, workers int) ([]bool, error) {
	batches := (len(faults) + BatchSize - 1) / BatchSize
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > batches {
		workers = batches
	}
	detected := make([]bool, len(faults))
	var cursor atomic.Int64
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				b := int(cursor.Add(1)) - 1
				if b >= batches {
					return
				}
				lo := b * BatchSize
				hi := lo + BatchSize
				if hi > len(faults) {
					hi = len(faults)
				}
				mask, err := ReplayBatch(tr, faults[lo:hi])
				if err != nil {
					errs[w] = err
					return
				}
				for i := lo; i < hi; i++ {
					detected[i] = mask>>uint(i-lo)&1 == 1
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return detected, nil
}
