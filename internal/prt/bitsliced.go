package prt

import (
	"fmt"

	"repro/internal/gf"
	"repro/internal/gf2"
	"repro/internal/lfsr"
	"repro/internal/ram"
)

// LaneMode selects how the m parallel bit automatons of a word-oriented
// memory are driven (the paper's §2: intra-word faults are tested "by
// parallel application of a π-testing for BOM … with (1) parallel or
// (2) with random trajectories").
type LaneMode int

const (
	// ParallelLanes drives every bit lane with the same automaton and
	// the same seed: all lanes march in lock-step, so aggressor and
	// victim bits inside a word always carry identical data.  Cheap,
	// but blind to idempotent intra-word coupling that forces the
	// shared value.
	ParallelLanes LaneMode = iota
	// RandomLanes gives every lane its own phase (and optionally its
	// own polynomial), decorrelating the bits inside each word — the
	// paper's randomised-trajectory variant, "controlled by a small
	// hardware overhead that can be programmed externally".
	RandomLanes
)

func (m LaneMode) String() string {
	if m == ParallelLanes {
		return "parallel"
	}
	return "random"
}

// BitSlicedConfig drives m independent GF(2) automatons, one per bit
// lane of a word-oriented memory.
type BitSlicedConfig struct {
	// M is the word width (number of lanes).
	M int
	// Gen is the per-lane generator polynomial over GF(2).
	Gen lfsr.GenPoly
	// Mode selects lane correlation.
	Mode LaneMode
	// LaneSeedSeed parameterises the per-lane seeds in RandomLanes
	// mode (deterministic).
	LaneSeedSeed int64
	// Trajectory is the shared address order (the lanes of one word are
	// written together by a single memory write).
	Trajectory Trajectory
	// PermSeed parameterises the Random trajectory.
	PermSeed int64
	// Verify adds a full read-back pass comparing every cell against
	// the per-lane expected TDB.
	Verify bool
}

// NewBitSliced returns a configuration with the default per-lane
// automaton g(x) = 1 + x + x² over GF(2).
func NewBitSliced(m int, mode LaneMode) BitSlicedConfig {
	f := gf.NewField(1)
	return BitSlicedConfig{
		M:    m,
		Gen:  lfsr.MustGenPoly(f, []gf.Elem{1, 1, 1}),
		Mode: mode,
	}
}

// laneSeeds returns the k-element seed for every lane.
func (c BitSlicedConfig) laneSeeds() [][]gf.Elem {
	k := c.Gen.K()
	seeds := make([][]gf.Elem, c.M)
	if c.Mode == ParallelLanes {
		for b := range seeds {
			s := make([]gf.Elem, k)
			for i := range s {
				s[i] = 1
			}
			seeds[b] = s
		}
		return seeds
	}
	// RandomLanes: walk the orbit so lanes start at different phases;
	// derive an offset per lane from a deterministic generator.
	r := permRNG{s: uint64(c.LaneSeedSeed)*0x9E3779B97F4A7C15 + 1}
	base := make([]gf.Elem, k)
	for i := range base {
		base[i] = 1
	}
	w := lfsr.MustWord(c.Gen, base)
	period := w.Period(0)
	for b := range seeds {
		offset := uint64(r.intn(int(period)))
		s, err := lfsr.JumpAhead(c.Gen, base, offset)
		if err != nil {
			panic(err)
		}
		seeds[b] = s
		// Guard against the (impossible for nonzero base) zero state.
		if allZeroElems(s) {
			s[0] = 1
		}
	}
	return seeds
}

// RunBitSliced executes one bit-sliced π-iteration on a word-oriented
// memory: each write stores the next bit of every lane automaton
// simultaneously, each step reads back the k previous words.  Returns
// per-lane detection (lane b detected ⇔ lane b's Fin ≠ Fin*).
func RunBitSliced(c BitSlicedConfig, mem ram.Memory) (BitSlicedResult, error) {
	if mem.Width() != c.M {
		return BitSlicedResult{}, fmt.Errorf("prt: bit-sliced width %d != memory width %d", c.M, mem.Width())
	}
	if c.M < 1 || c.M > 32 {
		return BitSlicedResult{}, fmt.Errorf("prt: lane count %d out of range", c.M)
	}
	k := c.Gen.K()
	n := mem.Size()
	if n < k+1 {
		return BitSlicedResult{}, fmt.Errorf("prt: memory too small")
	}
	cfg := Config{Trajectory: c.Trajectory, PermSeed: c.PermSeed}
	addr := cfg.Addresses(n)
	seeds := c.laneSeeds()
	taps := c.Gen.Taps()
	var res BitSlicedResult
	res.LaneDetected = make([]bool, c.M)

	// Trace-replay annotation: every lane applies the same GF(2)
	// recurrence to its own bit column, so each walk write is a
	// bit-diagonal linear function of the k preceding reads.
	var tapRows [][]uint32
	var back []int
	if _, tracing := mem.(ram.TraceAnnotator); tracing {
		for j := 1; j <= k; j++ {
			rows := make([]uint32, c.M)
			if taps[j-1]&1 == 1 {
				for r := 0; r < c.M; r++ {
					rows[r] = 1 << uint(r) // lane r depends on lane r only
				}
			}
			tapRows = append(tapRows, rows)
			back = append(back, j)
		}
	}

	// Seed phase: assemble the seed words from the per-lane seeds.
	for i := 0; i < k; i++ {
		var word ram.Word
		for b := 0; b < c.M; b++ {
			word |= ram.Word(seeds[b][i]&1) << uint(b)
		}
		mem.Write(addr[i], word)
		res.Ops++
	}
	// Walk phase: every lane applies the same GF(2) recurrence to its
	// own bit column.
	for i := k; i < n; i++ {
		prev := make([]ram.Word, k) // prev[j] = value at addr[i-k+j]
		for j := 0; j < k; j++ {
			prev[j] = mem.Read(addr[i-k+j])
			res.Ops++
		}
		var word ram.Word
		for b := 0; b < c.M; b++ {
			var next uint32
			// next_b = Σ_j a_j · bit_b(c_{i-j}) over GF(2)
			for j := 1; j <= k; j++ {
				if taps[j-1]&1 == 1 {
					next ^= uint32(prev[k-j]>>uint(b)) & 1
				}
			}
			word |= ram.Word(next) << uint(b)
		}
		mem.Write(addr[i], word)
		if tapRows != nil {
			ram.AnnotateLinear(mem, back, tapRows, 0)
		}
		res.Ops++
	}
	// Observe per-lane Fin and compare with per-lane predictions.
	fin := make([]ram.Word, k)
	for i := 0; i < k; i++ {
		fin[i] = mem.Read(addr[n-k+i])
		ram.AnnotateChecked(mem)
		res.Ops++
	}
	for b := 0; b < c.M; b++ {
		want, err := lfsr.JumpAhead(c.Gen, seeds[b], uint64(n-k))
		if err != nil {
			return res, err
		}
		for i := 0; i < k; i++ {
			if gf.Elem(fin[i]>>uint(b))&1 != want[i]&1 {
				res.LaneDetected[b] = true
				res.Detected = true
			}
		}
	}
	// Optional full read-back against the per-lane expected TDB.
	if c.Verify {
		laneSeqs := make([][]gf.Elem, c.M)
		for b := 0; b < c.M; b++ {
			laneSeqs[b] = lfsr.MustWord(c.Gen, seeds[b]).Sequence(n)
		}
		for i := 0; i < n; i++ {
			got := mem.Read(addr[i])
			ram.AnnotateChecked(mem)
			res.Ops++
			for b := 0; b < c.M; b++ {
				if gf.Elem(got>>uint(b))&1 != laneSeqs[b][i]&1 {
					res.LaneDetected[b] = true
					res.Detected = true
				}
			}
		}
	}
	return res, nil
}

// BitSlicedResult reports a bit-sliced π-iteration.
type BitSlicedResult struct {
	Detected     bool
	LaneDetected []bool
	Ops          uint64
}

// BitSlicedScheme3 runs three bit-sliced iterations mirroring
// StandardScheme3: ascending, descending, ascending with shifted lane
// seeds, all with read-back verification; detection is the OR over
// iterations.
func BitSlicedScheme3(m int, mode LaneMode) []BitSlicedConfig {
	base := NewBitSliced(m, mode)
	base.Verify = true
	it1 := base
	it1.Trajectory = Ascending
	it2 := base
	it2.Trajectory = Descending
	it2.LaneSeedSeed = 1
	it3 := base
	it3.Trajectory = Ascending
	it3.LaneSeedSeed = 2
	return []BitSlicedConfig{it1, it2, it3}
}

// BitSlicedScheme extends BitSlicedScheme3 to an arbitrary iteration
// count, alternating trajectory direction and re-seeding lanes each
// time (RandomLanes mode draws fresh decorrelated phases per
// iteration).
func BitSlicedScheme(m int, mode LaneMode, iters int) []BitSlicedConfig {
	base := NewBitSliced(m, mode)
	base.Verify = true
	out := make([]BitSlicedConfig, iters)
	for i := range out {
		c := base
		if i%2 == 1 {
			c.Trajectory = Descending
		}
		c.LaneSeedSeed = int64(i)
		out[i] = c
	}
	return out
}

// RunBitSlicedScheme runs the configurations in order and merges
// detection.
func RunBitSlicedScheme(cfgs []BitSlicedConfig, mem ram.Memory) (BitSlicedResult, error) {
	var merged BitSlicedResult
	for i, c := range cfgs {
		r, err := RunBitSliced(c, mem)
		if err != nil {
			return merged, fmt.Errorf("prt: bit-sliced iteration %d: %w", i+1, err)
		}
		if merged.LaneDetected == nil {
			merged.LaneDetected = make([]bool, len(r.LaneDetected))
		}
		merged.Ops += r.Ops
		for b, d := range r.LaneDetected {
			if d {
				merged.LaneDetected[b] = true
				merged.Detected = true
			}
		}
	}
	return merged, nil
}

// DefaultLanePoly is the per-lane characteristic polynomial x²+x+1 in
// gf2 form, exported for documentation and the BIST gate model.
var DefaultLanePoly = gf2.Poly(0x7)
